package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

func TestGeneratePaperDefaults(t *testing.T) {
	cfg := PaperDefaults(20, 4, 42)
	set, a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == nil {
		t.Fatal("nil analyzer")
	}
	if set.Len() != 20 {
		t.Fatalf("generated %d streams", set.Len())
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	srcs := map[int]bool{}
	for _, s := range set.Streams {
		if srcs[int(s.Src)] {
			t.Fatalf("duplicate source node %d", s.Src)
		}
		srcs[int(s.Src)] = true
		if s.Priority < 1 || s.Priority > 4 {
			t.Fatalf("priority %d outside [1,4]", s.Priority)
		}
		if s.Length < 1 || s.Length > 40 {
			t.Fatalf("length %d outside [1,40]", s.Length)
		}
		if s.Period < 40 {
			t.Fatalf("period %d below minimum", s.Period)
		}
		if s.Deadline != s.Period {
			t.Fatalf("deadline %d != period %d", s.Deadline, s.Period)
		}
	}
}

// TestInflationEnsuresUWithinPeriod: after generation, every stream's
// delay upper bound fits within its period (the paper's accommodation
// rule).
func TestInflationEnsuresUWithinPeriod(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := PaperDefaults(20, 2, seed)
		set, a, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range set.Streams {
			u, err := a.CalUSearchCap(s.ID, 1<<16)
			if err != nil {
				t.Fatal(err)
			}
			if u > s.Period {
				t.Fatalf("seed %d: stream %d has U=%d > T=%d after inflation", seed, s.ID, u, s.Period)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, err := Generate(PaperDefaults(15, 3, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(PaperDefaults(15, 3, 7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Streams {
		x, y := a.Streams[i], b.Streams[i]
		if x.Src != y.Src || x.Dst != y.Dst || x.Priority != y.Priority ||
			x.Period != y.Period || x.Length != y.Length {
			t.Fatalf("stream %d differs across identical seeds", i)
		}
	}
	c, _, err := Generate(PaperDefaults(15, 3, 8))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Streams {
		if a.Streams[i].Src != c.Streams[i].Src || a.Streams[i].Dst != c.Streams[i].Dst {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical topologial layout")
	}
}

func TestGenerateWithoutInflation(t *testing.T) {
	cfg := PaperDefaults(20, 1, 3)
	cfg.InflatePeriods = false
	set, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range set.Streams {
		if s.Period > 90 {
			t.Fatalf("period %d inflated despite InflatePeriods=false", s.Period)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{MeshW: 1, MeshH: 0, Streams: 1, PLevels: 1, CMin: 1, CMax: 2, TMin: 10, TMax: 20},
		{MeshW: 4, MeshH: 4, Streams: 17, PLevels: 1, CMin: 1, CMax: 2, TMin: 10, TMax: 20},
		{MeshW: 4, MeshH: 4, Streams: 0, PLevels: 1, CMin: 1, CMax: 2, TMin: 10, TMax: 20},
		{MeshW: 4, MeshH: 4, Streams: 4, PLevels: 0, CMin: 1, CMax: 2, TMin: 10, TMax: 20},
		{MeshW: 4, MeshH: 4, Streams: 4, PLevels: 1, CMin: 0, CMax: 2, TMin: 10, TMax: 20},
		{MeshW: 4, MeshH: 4, Streams: 4, PLevels: 1, CMin: 3, CMax: 2, TMin: 10, TMax: 20},
		{MeshW: 4, MeshH: 4, Streams: 4, PLevels: 1, CMin: 1, CMax: 2, TMin: 20, TMax: 10},
	}
	for i, cfg := range bad {
		if _, _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestHighestPriorityUnblockedAcrossSeeds: in generated workloads a
// stream that is the unique occupant of the top level has U == L.
func TestHighestPriorityUnblockedAcrossSeeds(t *testing.T) {
	set, a, err := Generate(PaperDefaults(10, 10, 99))
	if err != nil {
		t.Fatal(err)
	}
	// Find the streams at the maximum priority present.
	max := 0
	for _, s := range set.Streams {
		if s.Priority > max {
			max = s.Priority
		}
	}
	var tops []*stream.Stream
	for _, s := range set.Streams {
		if s.Priority == max {
			tops = append(tops, s)
		}
	}
	if len(tops) != 1 {
		t.Skip("top level not unique for this seed")
	}
	u, err := a.CalUSearch(tops[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if u != tops[0].Latency {
		t.Fatalf("unique top-priority stream U=%d, want L=%d", u, tops[0].Latency)
	}
}

// TestAnalyzerMatchesFreshOne: the analyzer returned by Generate
// reflects the final (inflated) stream set.
func TestAnalyzerMatchesFreshOne(t *testing.T) {
	set, a, err := Generate(PaperDefaults(20, 1, 5))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.NewAnalyzer(set)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range set.Streams {
		u1, err := a.CalUSearchCap(s.ID, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		u2, err := fresh.CalUSearchCap(s.ID, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		if u1 != u2 {
			t.Fatalf("stream %d: returned analyzer U=%d, fresh U=%d", s.ID, u1, u2)
		}
	}
}
