package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/stream"
	"repro/internal/topology"
)

// GenerateOn is Generate for an arbitrary topology: the paper's §5
// geometry (distinct uniform sources, uniform destinations, uniform C,
// T and priority, optional period inflation) realised on t with its
// canonical deterministic router instead of the fixed 10×10 mesh.
// cfg.MeshW and cfg.MeshH are ignored; every other field keeps its
// Generate meaning. The random draw order matches Generate exactly, so
// GenerateOn(NewMesh2D(w,h), cfg) with cfg.MeshW=w, cfg.MeshH=h is
// byte-identical to Generate(cfg) — pinned by tests — and a seed swept
// across topologies (cmd/netsim -topology, cmd/rtwexplore) changes
// only the network, never the demand sequence.
func GenerateOn(t topology.Topology, cfg Config) (*stream.Set, *core.Analyzer, error) {
	if err := cfg.validateOn(t); err != nil {
		return nil, nil, err
	}
	router, err := routing.ForTopology(t)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	set := stream.NewSet(t)

	perm := rng.Perm(t.Nodes())
	for i := 0; i < cfg.Streams; i++ {
		src := topology.NodeID(perm[i])
		dst := src
		for dst == src {
			dst = topology.NodeID(rng.Intn(t.Nodes()))
		}
		prio := 1 + rng.Intn(cfg.PLevels)
		period := cfg.TMin + rng.Intn(cfg.TMax-cfg.TMin+1)
		length := cfg.CMin + rng.Intn(cfg.CMax-cfg.CMin+1)
		if _, err := set.Add(router, src, dst, prio, period, length, period); err != nil {
			return nil, nil, err
		}
	}

	a, err := core.NewAnalyzer(set)
	if err != nil {
		return nil, nil, err
	}
	if !cfg.InflatePeriods {
		return set, a, nil
	}
	return inflatePeriods(set, a, cfg)
}

// validateOn checks the topology-independent fields against t.
func (c Config) validateOn(t topology.Topology) error {
	if t.Nodes() < 2 {
		return fmt.Errorf("workload: topology %s has %d nodes, need at least 2", t.Name(), t.Nodes())
	}
	if c.Streams < 1 || c.Streams > t.Nodes() {
		return fmt.Errorf("workload: %d streams on %d nodes of %s", c.Streams, t.Nodes(), t.Name())
	}
	if c.PLevels < 1 {
		return fmt.Errorf("workload: %d priority levels", c.PLevels)
	}
	if c.CMin < 1 || c.CMax < c.CMin {
		return fmt.Errorf("workload: invalid C range [%d,%d]", c.CMin, c.CMax)
	}
	if c.TMin < 1 || c.TMax < c.TMin {
		return fmt.Errorf("workload: invalid T range [%d,%d]", c.TMin, c.TMax)
	}
	return nil
}
