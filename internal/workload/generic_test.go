package workload

import (
	"testing"

	"repro/internal/topology"
)

// GenerateOn over the same mesh must reproduce Generate draw for draw:
// the explorer holds the demand sequence fixed while swapping networks,
// and that only works if the mesh case is the identity.
func TestGenerateOnMeshMatchesGenerate(t *testing.T) {
	cfg := PaperDefaults(20, 4, 7)
	cfg.InflatePeriods = true
	want, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := GenerateOn(topology.NewMesh2D(cfg.MeshW, cfg.MeshH), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("GenerateOn produced %d streams, Generate %d", got.Len(), want.Len())
	}
	for i := range want.Streams {
		w, g := want.Streams[i], got.Streams[i]
		if w.Src != g.Src || w.Dst != g.Dst || w.Priority != g.Priority ||
			w.Period != g.Period || w.Length != g.Length || w.Deadline != g.Deadline {
			t.Fatalf("stream %d differs: Generate %+v, GenerateOn %+v", i, *w, *g)
		}
	}
}

func TestGenerateOnNonMeshTopologies(t *testing.T) {
	for _, topo := range []topology.Topology{
		topology.NewRing(12), topology.NewHypercube(4), topology.NewTorus2D(4, 4),
	} {
		cfg := PaperDefaults(8, 4, 3)
		cfg.InflatePeriods = false
		set, a, err := GenerateOn(topo, cfg)
		if err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		if a == nil {
			t.Fatalf("%s: nil analyzer", topo.Name())
		}
		if set.Len() != 8 {
			t.Fatalf("%s: %d streams, want 8", topo.Name(), set.Len())
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		seen := make(map[topology.NodeID]bool)
		for _, s := range set.Streams {
			if seen[s.Src] {
				t.Fatalf("%s: duplicate source %d", topo.Name(), s.Src)
			}
			seen[s.Src] = true
		}
	}
}

func TestGenerateOnDeterministic(t *testing.T) {
	cfg := PaperDefaults(10, 4, 99)
	cfg.InflatePeriods = true
	a, _, err := GenerateOn(topology.NewRing(16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := GenerateOn(topology.NewRing(16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Streams {
		x, y := a.Streams[i], b.Streams[i]
		if x.Src != y.Src || x.Dst != y.Dst || x.Priority != y.Priority ||
			x.Period != y.Period || x.Length != y.Length || x.Deadline != y.Deadline {
			t.Fatalf("stream %d nondeterministic: %+v vs %+v", i, *x, *y)
		}
	}
}

func TestGenerateOnRejectsBadConfigs(t *testing.T) {
	cfg := PaperDefaults(20, 4, 1)
	if _, _, err := GenerateOn(topology.NewRing(12), cfg); err == nil {
		t.Fatal("accepted 20 streams on 12 nodes")
	}
	cfg = PaperDefaults(4, 0, 1)
	if _, _, err := GenerateOn(topology.NewRing(12), cfg); err == nil {
		t.Fatal("accepted 0 priority levels")
	}
}
