// Package workload generates the random periodic message-stream sets
// of the paper's simulation study (§5):
//
//   - processing nodes are interconnected in a 10×10 two-dimensional
//     mesh with X-Y routing;
//   - each node is the source of at most one message stream, whose
//     destination is drawn from a spatial uniform distribution;
//   - the maximum message size C is uniformly distributed (the study
//     uses [1,40] flits — see DESIGN.md for the OCR reconstruction);
//   - the minimum inter-generation time T is uniformly distributed
//     (the study uses [40,90] flit times);
//   - every stream draws its priority uniformly from the configured
//     number of priority levels;
//   - when a stream's computed delay upper bound U exceeds its period,
//     the period (and deadline) is inflated to U so that all generated
//     traffic can be accommodated, exactly as the paper does.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/stream"
	"repro/internal/topology"
)

// Config parameterises the generator. The zero value is not valid; use
// PaperDefaults for the paper's setup.
type Config struct {
	MeshW, MeshH int
	Streams      int // number of message streams (<= number of nodes)
	PLevels      int // number of priority levels
	CMin, CMax   int // message length range, flits
	TMin, TMax   int // inter-generation time range, flit times
	Seed         int64
	// InflatePeriods applies the paper's rule T_i = max(T_i, U_i).
	// Disabled only by ablation experiments.
	InflatePeriods bool
	// UCap bounds the horizon searched for delay upper bounds during
	// period inflation; 0 means 65536 flit times (comfortably past the
	// paper's 30000-flit-time simulations).
	UCap int
}

// PaperDefaults returns the §5 configuration for a given stream count
// and priority-level count.
func PaperDefaults(streams, plevels int, seed int64) Config {
	return Config{
		MeshW: 10, MeshH: 10,
		Streams: streams, PLevels: plevels,
		CMin: 1, CMax: 40,
		TMin: 40, TMax: 90,
		Seed:           seed,
		InflatePeriods: true,
	}
}

func (c Config) validate() error {
	if c.MeshW < 2 || c.MeshH < 1 {
		return fmt.Errorf("workload: invalid mesh %dx%d", c.MeshW, c.MeshH)
	}
	if c.Streams < 1 || c.Streams > c.MeshW*c.MeshH {
		return fmt.Errorf("workload: %d streams on %d nodes", c.Streams, c.MeshW*c.MeshH)
	}
	if c.PLevels < 1 {
		return fmt.Errorf("workload: %d priority levels", c.PLevels)
	}
	if c.CMin < 1 || c.CMax < c.CMin {
		return fmt.Errorf("workload: invalid C range [%d,%d]", c.CMin, c.CMax)
	}
	if c.TMin < 1 || c.TMax < c.TMin {
		return fmt.Errorf("workload: invalid T range [%d,%d]", c.TMin, c.TMax)
	}
	return nil
}

// Generate builds a stream set per the configuration. Sources are
// distinct nodes (each node sources at most one stream); destinations
// are uniform over the other nodes. Priorities are uniform over
// 1..PLevels (larger = more important). When InflatePeriods is set, the
// paper's period-inflation rule is applied and the returned analyzer
// reflects the final set.
func Generate(cfg Config) (*stream.Set, *core.Analyzer, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := topology.NewMesh2D(cfg.MeshW, cfg.MeshH)
	router := routing.NewXY(m)
	set := stream.NewSet(m)

	// Distinct sources: a random permutation of the nodes.
	perm := rng.Perm(m.Nodes())
	for i := 0; i < cfg.Streams; i++ {
		src := topology.NodeID(perm[i])
		dst := src
		for dst == src {
			dst = topology.NodeID(rng.Intn(m.Nodes()))
		}
		prio := 1 + rng.Intn(cfg.PLevels)
		period := cfg.TMin + rng.Intn(cfg.TMax-cfg.TMin+1)
		length := cfg.CMin + rng.Intn(cfg.CMax-cfg.CMin+1)
		if _, err := set.Add(router, src, dst, prio, period, length, period); err != nil {
			return nil, nil, err
		}
	}

	a, err := core.NewAnalyzer(set)
	if err != nil {
		return nil, nil, err
	}
	if !cfg.InflatePeriods {
		return set, a, nil
	}
	// The paper's accommodation rule: if U_i > T_i, raise T_i (and the
	// deadline) to U_i. Raising periods only lowers interference, so a
	// bound computed against the heavier pre-inflation demand remains
	// valid; a few passes reach a fixpoint. Streams saturated past the
	// search cap have their periods quadrupled instead, turning them
	// into sporadic background traffic.
	return inflatePeriods(set, a, cfg)
}
