package e2e

import (
	"strings"
	"testing"

	"repro/internal/routing"
	"repro/internal/stream"
	"repro/internal/topology"
)

// controlSystem builds a 2-node sensing -> actuation chain plus an
// interfering task and an interfering stream.
func controlSystem(t *testing.T) *System {
	t.Helper()
	m := topology.NewMesh2D(4, 1)
	r := routing.NewXY(m)
	set := stream.NewSet(m)
	// Stream 0: sensor (node 0) -> actuator (node 3), priority 2.
	if _, err := set.Add(r, 0, 3, 2, 50, 4, 50); err != nil {
		t.Fatal(err)
	}
	// Stream 1: interfering higher-priority stream on the same row.
	if _, err := set.Add(r, 1, 3, 3, 40, 6, 40); err != nil {
		t.Fatal(err)
	}
	return &System{
		Tasks: []Task{
			{Name: "sense", Node: 0, WCET: 5, Period: 50, Priority: 2},
			{Name: "act", Node: 3, WCET: 4, Period: 50, Priority: 2},
			{Name: "hk", Node: 0, WCET: 3, Period: 20, Priority: 3}, // housekeeping preempts sense
		},
		Set: set,
		Chains: []Chain{
			{Name: "control-loop", Tasks: []int{0, 1}, Streams: []stream.ID{0}, Deadline: 60},
		},
	}
}

func TestTaskResponseTime(t *testing.T) {
	sys := controlSystem(t)
	// sense: C=5, preempted by hk (C=3, T=20): R = 5 + ceil(R/20)*3 ->
	// R=8 (ceil(8/20)=1).
	r, err := sys.TaskResponseTime(0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 8 {
		t.Fatalf("R(sense) = %d, want 8", r)
	}
	// act alone on node 3: R = 4.
	r, err = sys.TaskResponseTime(1)
	if err != nil {
		t.Fatal(err)
	}
	if r != 4 {
		t.Fatalf("R(act) = %d, want 4", r)
	}
	if _, err := sys.TaskResponseTime(99); err == nil {
		t.Fatal("accepted unknown task")
	}
}

func TestTaskResponseTimeOverload(t *testing.T) {
	sys := &System{Tasks: []Task{
		{Name: "a", Node: 0, WCET: 10, Period: 10, Priority: 2},
		{Name: "b", Node: 0, WCET: 1, Period: 10, Priority: 1},
	}}
	r, err := sys.TaskResponseTime(1)
	if err != nil {
		t.Fatal(err)
	}
	if r != -1 {
		t.Fatalf("R = %d, want -1 (node saturated)", r)
	}
}

func TestAnalyzeChain(t *testing.T) {
	sys := controlSystem(t)
	rep, err := sys.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Chains[0]
	// Bound = R(sense)=8 + U(stream0) + R(act)=4. Stream 0 is blocked
	// by stream 1 (6 flits): U = L(6) + interference.
	if c.TaskPart != 12 {
		t.Fatalf("task part = %d, want 12", c.TaskPart)
	}
	if c.CommsPart < sys.Set.Get(0).Latency {
		t.Fatalf("comms part %d below network latency", c.CommsPart)
	}
	if c.Bound != c.TaskPart+c.CommsPart {
		t.Fatalf("bound composition wrong: %+v", c)
	}
	if !c.Feasible || !rep.Feasible {
		t.Fatalf("chain should fit a 60 deadline: %+v", c)
	}
	if !strings.Contains(rep.Format(), "control-loop") {
		t.Fatal("format missing chain")
	}
}

func TestAnalyzeInfeasibleChain(t *testing.T) {
	sys := controlSystem(t)
	sys.Chains[0].Deadline = 15
	rep, err := sys.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible || rep.Chains[0].Feasible {
		t.Fatal("tight deadline should fail")
	}
	if !strings.Contains(rep.Format(), "MISSES DEADLINE") {
		t.Fatal("format missing verdict")
	}
}

func TestAnalyzeUnboundedComponent(t *testing.T) {
	sys := controlSystem(t)
	// Saturate node 0 with a higher-priority task.
	sys.Tasks = append(sys.Tasks, Task{Name: "spin", Node: 0, WCET: 20, Period: 20, Priority: 9})
	rep, err := sys.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chains[0].Bound != -1 || rep.Chains[0].Feasible {
		t.Fatalf("saturated node should make the chain unbounded: %+v", rep.Chains[0])
	}
	if !strings.Contains(rep.Format(), "unbounded") {
		t.Fatal("format missing unbounded")
	}
}

func TestValidateErrors(t *testing.T) {
	base := controlSystem(t)

	tamper := func(f func(s *System)) *System {
		s := controlSystem(t)
		f(s)
		return s
	}
	cases := []*System{
		tamper(func(s *System) { s.Set = nil }),
		tamper(func(s *System) { s.Chains[0].Tasks = nil }),
		tamper(func(s *System) { s.Chains[0].Streams = nil }),
		tamper(func(s *System) { s.Chains[0].Deadline = 0 }),
		tamper(func(s *System) { s.Chains[0].Tasks = []int{0, 99} }),
		tamper(func(s *System) { s.Chains[0].Streams = []stream.ID{77} }),
		// Stream runs 0->3 but the chain claims tasks on nodes 0->0.
		tamper(func(s *System) { s.Tasks[1].Node = 0 }),
	}
	for i, sys := range cases {
		if err := sys.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
}

// TestMultiHopChain: a 3-stage chain across the mesh composes three
// response times and two stream bounds.
func TestMultiHopChain(t *testing.T) {
	m := topology.NewMesh2D(5, 1)
	r := routing.NewXY(m)
	set := stream.NewSet(m)
	if _, err := set.Add(r, 0, 2, 2, 60, 3, 60); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Add(r, 2, 4, 2, 60, 3, 60); err != nil {
		t.Fatal(err)
	}
	sys := &System{
		Tasks: []Task{
			{Name: "a", Node: 0, WCET: 2, Period: 60, Priority: 1},
			{Name: "b", Node: 2, WCET: 3, Period: 60, Priority: 1},
			{Name: "c", Node: 4, WCET: 2, Period: 60, Priority: 1},
		},
		Set: set,
		Chains: []Chain{
			{Name: "pipe", Tasks: []int{0, 1, 2}, Streams: []stream.ID{0, 1}, Deadline: 30},
		},
	}
	rep, err := sys.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Chains[0]
	// tasks: 2+3+2 = 7; streams: L = 2+3-1 = 4 each, unblocked.
	if c.TaskPart != 7 || c.CommsPart != 8 || c.Bound != 15 || !c.Feasible {
		t.Fatalf("chain verdict: %+v", c)
	}
}
