// Package e2e composes the paper's communication analysis with
// classical fixed-priority CPU scheduling into end-to-end guarantees
// for distributed task chains — the full problem the paper's
// introduction motivates: "several cooperating tasks running on
// different processing nodes have to communicate with each other, and
// if these tasks have timing constraints such as deadlines,
// unpredictable delay of message transmission can adversely affect the
// execution of the tasks dependent on the messages".
//
// Each node runs its tasks under preemptive fixed-priority scheduling
// (response times via the standard recurrence); messages between tasks
// are the paper's real-time streams with delay upper bounds from
// package core. A chain t0 -> s0 -> t1 -> s1 -> ... is guaranteed iff
// the sum of its task response times and stream bounds fits the
// end-to-end deadline.
package e2e

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/topology"
)

// Task is a periodic computation pinned to a node, scheduled with
// preemptive fixed priorities (larger Priority = more important).
// Times are in the same flit-time unit as the network model.
type Task struct {
	Name     string
	Node     topology.NodeID
	WCET     int
	Period   int
	Priority int
}

// Chain is an end-to-end pipeline: Tasks[i] sends Streams[i] to
// Tasks[i+1]. len(Streams) must be len(Tasks)-1.
type Chain struct {
	Name     string
	Tasks    []int       // indices into System.Tasks
	Streams  []stream.ID // connecting streams, in order
	Deadline int         // end-to-end deadline
}

// System bundles the tasks, the message streams and the chains.
type System struct {
	Tasks  []Task
	Set    *stream.Set
	Chains []Chain
}

// maxResponseHorizon caps the task response-time recurrence.
const maxResponseHorizon = 1 << 20

// TaskResponseTime computes the classic fixed-priority preemptive
// response time of Tasks[idx] against the higher-or-equal-priority
// tasks on the same node:
//
//	R = C + sum over j of ceil(R / T_j) * C_j
//
// It returns -1 when the recurrence diverges (node overloaded).
func (sys *System) TaskResponseTime(idx int) (int, error) {
	if idx < 0 || idx >= len(sys.Tasks) {
		return 0, fmt.Errorf("e2e: no task %d", idx)
	}
	t := sys.Tasks[idx]
	if t.WCET < 1 || t.Period < 1 {
		return 0, fmt.Errorf("e2e: task %q has non-positive WCET/period", t.Name)
	}
	var hp []Task
	for j, o := range sys.Tasks {
		if j == idx || o.Node != t.Node || o.Priority < t.Priority {
			continue
		}
		if o.WCET < 1 || o.Period < 1 {
			return 0, fmt.Errorf("e2e: task %q has non-positive WCET/period", o.Name)
		}
		hp = append(hp, o)
	}
	r := t.WCET
	for iter := 0; iter < 1<<16; iter++ {
		next := t.WCET
		for _, o := range hp {
			//rtwlint:ignore intoverflow -- standard RTA ceiling term: r <= maxResponseHorizon (1<<20) is enforced before every reuse below, WCET/Period >= 1 are validated at entry, so the product is <= maxResponseHorizon * WCET of a feasible task; bounding slice-element fields is outside the interval domain
			next += ((r + o.Period - 1) / o.Period) * o.WCET
		}
		if next == r {
			return r, nil
		}
		if next > maxResponseHorizon {
			return -1, nil
		}
		r = next
	}
	return -1, nil
}

// ChainVerdict is the end-to-end outcome for one chain.
type ChainVerdict struct {
	Name      string
	Bound     int // -1 when some component has no bound
	Deadline  int
	Feasible  bool
	TaskPart  int // sum of task response times
	CommsPart int // sum of stream delay upper bounds
}

// Report is the outcome of Analyze.
type Report struct {
	TaskR    []int // per-task response time (-1: unbounded)
	StreamU  []int // per-stream delay upper bound (-1: unbounded)
	Chains   []ChainVerdict
	Feasible bool
}

// Format renders the report.
func (r *Report) Format() string {
	var b strings.Builder
	for _, c := range r.Chains {
		status := "ok"
		if !c.Feasible {
			status = "MISSES DEADLINE"
		}
		bound := fmt.Sprintf("%d", c.Bound)
		if c.Bound < 0 {
			bound = "unbounded"
		}
		fmt.Fprintf(&b, "chain %-14s bound %-9s (compute %d + comms %d) deadline %-6d %s\n",
			c.Name, bound, c.TaskPart, c.CommsPart, c.Deadline, status)
	}
	fmt.Fprintf(&b, "system feasible: %v\n", r.Feasible)
	return b.String()
}

// Validate checks structural consistency: chain indices in range,
// streams connecting the right nodes, matching lengths.
func (sys *System) Validate() error {
	if sys.Set == nil {
		return fmt.Errorf("e2e: nil stream set")
	}
	if err := sys.Set.Validate(); err != nil {
		return err
	}
	for _, c := range sys.Chains {
		if len(c.Tasks) < 1 {
			return fmt.Errorf("e2e: chain %q has no tasks", c.Name)
		}
		if len(c.Streams) != len(c.Tasks)-1 {
			return fmt.Errorf("e2e: chain %q has %d streams for %d tasks", c.Name, len(c.Streams), len(c.Tasks))
		}
		if c.Deadline < 1 {
			return fmt.Errorf("e2e: chain %q has non-positive deadline", c.Name)
		}
		for _, ti := range c.Tasks {
			if ti < 0 || ti >= len(sys.Tasks) {
				return fmt.Errorf("e2e: chain %q references task %d", c.Name, ti)
			}
		}
		for i, sid := range c.Streams {
			s := sys.Set.Get(sid)
			if s == nil {
				return fmt.Errorf("e2e: chain %q references stream %d", c.Name, sid)
			}
			from := sys.Tasks[c.Tasks[i]]
			to := sys.Tasks[c.Tasks[i+1]]
			if s.Src != from.Node || s.Dst != to.Node {
				return fmt.Errorf("e2e: chain %q: stream %d runs %d->%d but tasks sit on %d->%d",
					c.Name, sid, s.Src, s.Dst, from.Node, to.Node)
			}
		}
	}
	return nil
}

// Analyze computes every task response time, every stream bound, and
// every chain's end-to-end bound.
func (sys *System) Analyze() (*Report, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	analyzer, err := core.NewAnalyzer(sys.Set)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		TaskR:    make([]int, len(sys.Tasks)),
		StreamU:  make([]int, sys.Set.Len()),
		Feasible: true,
	}
	for i := range sys.Tasks {
		if rep.TaskR[i], err = sys.TaskResponseTime(i); err != nil {
			return nil, err
		}
	}
	for _, s := range sys.Set.Streams {
		if rep.StreamU[s.ID], err = analyzer.CalUSearchCap(s.ID, 1<<16); err != nil {
			return nil, err
		}
	}
	for _, c := range sys.Chains {
		v := ChainVerdict{Name: c.Name, Deadline: c.Deadline}
		ok := true
		for _, ti := range c.Tasks {
			if rep.TaskR[ti] < 0 {
				ok = false
				break
			}
			v.TaskPart += rep.TaskR[ti]
		}
		for _, sid := range c.Streams {
			if rep.StreamU[sid] < 0 {
				ok = false
				break
			}
			v.CommsPart += rep.StreamU[sid]
		}
		if ok {
			v.Bound = v.TaskPart + v.CommsPart
			v.Feasible = v.Bound <= c.Deadline
		} else {
			v.Bound = -1
		}
		if !v.Feasible {
			rep.Feasible = false
		}
		rep.Chains = append(rep.Chains, v)
	}
	return rep, nil
}
