package e2e

// The daemon end-to-end test: boot rtwormd's server stack (the same
// internal/server + internal/admit composition cmd/rtwormd wires up)
// on a loopback port, drive the full lifecycle over real HTTP —
// admit, withdraw, report, snapshot persistence, restart-and-restore —
// and check that graceful shutdown drains an in-flight mutation
// instead of cutting it off.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/server"
	"repro/internal/topology"
)

// bootDaemon starts a server over a fresh controller on 127.0.0.1:0
// and returns its base URL plus the pieces the test needs to shut it
// down and inspect it.
func bootDaemon(t *testing.T, snapshotPath string, delay time.Duration) (*server.Server, *admit.Controller, string, chan error) {
	t.Helper()
	ctl, err := admit.New(topology.NewMesh2D(10, 10), admit.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return serveDaemon(t, ctl, snapshotPath, delay)
}

func serveDaemon(t *testing.T, ctl *admit.Controller, snapshotPath string, delay time.Duration) (*server.Server, *admit.Controller, string, chan error) {
	t.Helper()
	srv, err := server.New(server.Config{
		Controller:    ctl,
		SnapshotPath:  snapshotPath,
		MutationDelay: delay,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return srv, ctl, "http://" + ln.Addr().String(), done
}

func shutdownDaemon(t *testing.T, srv *server.Server, done chan error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("serve returned %v", err)
	}
}

func postStream(t *testing.T, base string, body map[string]int) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/streams", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestDaemonLifecycleOverHTTP drives the worked example through a live
// daemon: stream-by-stream admission, a rejection, a withdrawal, and a
// restart that restores the snapshot with identical verdicts.
func TestDaemonLifecycleOverHTTP(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "state.json")
	srv, ctl, base, done := bootDaemon(t, snap, 0)

	// healthz answers before any traffic exists.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Admit the worked example stream by stream (§4.4 of the paper, on
	// the 10×10 mesh; node ids from the repo's canonical layout).
	streams := []map[string]int{
		{"src": 37, "dst": 77, "priority": 5, "period": 15, "length": 4},
		{"src": 11, "dst": 45, "priority": 4, "period": 10, "length": 2},
		{"src": 12, "dst": 57, "priority": 3, "period": 40, "length": 4},
		{"src": 14, "dst": 58, "priority": 2, "period": 45, "length": 9},
		{"src": 16, "dst": 39, "priority": 1, "period": 50, "length": 6},
	}
	var handles []int64
	for i, s := range streams {
		resp := postStream(t, base, s)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("admit %d: status %d", i, resp.StatusCode)
		}
		var ar struct {
			Handles []int64 `json:"handles"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		handles = append(handles, ar.Handles[0])
	}

	// The report over HTTP carries the paper's bounds.
	var rep struct {
		Feasible bool `json:"feasible"`
		Verdicts []struct {
			U int `json:"u"`
		} `json:"verdicts"`
	}
	resp, err = http.Get(base + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wantU := []int{7, 8, 26, 30, 33}
	if !rep.Feasible || len(rep.Verdicts) != 5 {
		t.Fatalf("report: %+v", rep)
	}
	for i, v := range rep.Verdicts {
		if v.U != wantU[i] {
			t.Fatalf("U_%d = %d over HTTP, want %d", i, v.U, wantU[i])
		}
	}

	// An infeasible stream is refused with 409 and leaves no trace.
	resp = postStream(t, base, map[string]int{
		"src": 37, "dst": 77, "priority": 9, "period": 5, "length": 5, "deadline": 2,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("infeasible admit: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if ctl.Len() != 5 {
		t.Fatalf("rejection left %d streams", ctl.Len())
	}

	// Withdraw one stream over HTTP.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/streams/%d", base, handles[4]), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("withdraw: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Stop the daemon, then boot a second one from the snapshot — the
	// restart path of cmd/rtwormd.
	shutdownDaemon(t, srv, done)
	ctl2, ok, err := server.LoadSnapshot(snap, admit.Config{})
	if err != nil || !ok {
		t.Fatalf("restore: ok=%v err=%v", ok, err)
	}
	srv2, ctl2, base2, done2 := serveDaemon(t, ctl2, snap, 0)
	defer shutdownDaemon(t, srv2, done2)

	if ctl2.Len() != 4 {
		t.Fatalf("restored %d streams, want 4", ctl2.Len())
	}
	b1, _ := json.Marshal(ctl.Report())
	b2, _ := json.Marshal(ctl2.Report())
	if !bytes.Equal(b1, b2) {
		t.Fatalf("restored report differs:\n%s\n%s", b1, b2)
	}
	// The restored daemon keeps serving: admit the withdrawn stream
	// again and the original verdicts come back.
	resp = postStream(t, base2, streams[4])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-admit after restore: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestDaemonShutdownDrainsInFlight pins the graceful-shutdown
// guarantee: a mutation that is mid-flight when Shutdown begins
// completes (200, committed, persisted) rather than being dropped.
func TestDaemonShutdownDrainsInFlight(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "state.json")
	const delay = 300 * time.Millisecond
	srv, ctl, base, done := bootDaemon(t, snap, delay)

	type result struct {
		status int
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/streams", "application/json",
			bytes.NewReader([]byte(`{"src":0,"dst":9,"priority":1,"period":100,"length":4}`)))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		resp.Body.Close()
		resCh <- result{status: resp.StatusCode}
	}()

	// Wait until the request is observably in flight, then shut down
	// while its MutationDelay is still running.
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	shutdownDaemon(t, srv, done)

	r := <-resCh
	if r.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request got status %d", r.status)
	}
	if srv.InFlight() != 0 {
		t.Fatalf("in-flight gauge stuck at %d", srv.InFlight())
	}
	if ctl.Len() != 1 {
		t.Fatalf("drained mutation not committed: %d streams", ctl.Len())
	}
	// The mutation's snapshot landed on disk before the daemon exited.
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot missing after drain: %v", err)
	}
	ctl2, ok, err := server.LoadSnapshot(snap, admit.Config{})
	if err != nil || !ok || ctl2.Len() != 1 {
		t.Fatalf("snapshot restore after drain: ok=%v err=%v", ok, err)
	}

	// After shutdown the port refuses new work.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after shutdown")
	}
}
