// Package eventsim is a skip-idle, event-driven counterpart of the
// cycle-accurate wormhole simulator in package sim. It produces
// results byte-identical to the cycle engine — package sim remains the
// oracle, and the differential battery in differential_test.go pins
// the two engines against each other across topologies, arbiters,
// buffer depths and seeds — while skipping the cycles in which nothing
// contended happens.
//
// Two observations make that possible:
//
//  1. Streams whose paths share no physical channel can never
//     interact: no virtual channel, no physical-channel arbitration
//     slot and no buffer is shared, and release times are fixed by the
//     schedule alone. The connected components of that static conflict
//     graph partition both the streams and the links, so each
//     component is simulated independently, to completion, with no
//     cross-component ordering to reproduce. (Config.Tracer is the one
//     feature that observes cross-component ordering, so New rejects
//     it; use the cycle engine for traces.)
//
//  2. Within a component, a message that never blocks follows an exact
//     closed-form "staircase" trajectory (flit f crosses channel i at
//     a fixed offset from the release time), and whether it will block
//     is decidable at release time by intersecting per-channel
//     occupancy windows against the other in-flight messages. While
//     every in-flight message is free-flowing, the component jumps
//     straight from event to event (releases, deliveries, deadline
//     drops); the moment a release would overlap an occupancy window,
//     the component falls back to the exact cycle kernel — a
//     per-component port of package sim's loop — and returns to jump
//     mode only when the survivors again match the staircase exactly.
//
// The fallback rule is deliberately conservative: window overlap does
// not always mean a flit-level stall, but free flow is only assumed
// when overlap is impossible, so jump mode never has to approximate
// an arbitration. Everything contended runs through the ported cycle
// kernel, which is why the statistics come out identical rather than
// merely close.
//
// A positive Set.RouterLatency disables jump mode (the staircase forms
// assume single-cycle routers); such runs still benefit from component
// decomposition and idle-gap skipping, but not from analytic flight.
package eventsim

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/topology"
)

// Simulator runs one event-driven wormhole simulation for a stream
// set. Build with New, run once with Run.
type Simulator struct {
	set   *stream.Set
	cfg   sim.Config
	res   *sim.Result
	comps []*comp
	sched *schedule
}

// New builds an event-driven simulator for the given validated stream
// set. The configuration is interpreted exactly as by sim.New, with
// one restriction: a non-nil Tracer is rejected, because trace events
// interleave across conflict components in an order only the global
// cycle loop can reproduce.
func New(set *stream.Set, cfg sim.Config) (*Simulator, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if set.Len() == 0 {
		return nil, fmt.Errorf("eventsim: empty stream set")
	}
	if cfg.Tracer != nil {
		return nil, fmt.Errorf("eventsim: tracing not supported (event order across conflict components is not reproduced); use the cycle engine")
	}
	c, err := withDefaults(cfg, set.Len())
	if err != nil {
		return nil, err
	}
	s := &Simulator{set: set, cfg: c, res: newResult(set, c)}
	s.sched = newSchedule(set, c)

	// Priority levels, ascending: index 0 is the lowest (as sim.New).
	prioIdx := make(map[int]int)
	levels := set.PriorityLevels() // descending
	for i, p := range levels {
		prioIdx[p] = len(levels) - 1 - i
	}
	vcsPerLink := len(levels)
	if c.Arbiter == sim.NonPreemptiveFIFO || c.Arbiter == sim.NonPreemptivePriority {
		vcsPerLink = 1
	}

	// Channels in the cycle engine's scan order (sorted by From, To);
	// per-component links keep this relative order so the flit-movement
	// sweep visits winners in the same sequence as the oracle.
	seen := make(map[topology.Channel]bool)
	var chans []topology.Channel
	for _, st := range set.Streams {
		for _, ch := range st.Path.Channels {
			if !seen[ch] {
				seen[ch] = true
				chans = append(chans, ch)
			}
		}
	}
	sort.Slice(chans, func(i, j int) bool {
		if chans[i].From != chans[j].From {
			return chans[i].From < chans[j].From
		}
		return chans[i].To < chans[j].To
	})
	scanOrd := make(map[topology.Channel]int, len(chans))
	for i, ch := range chans {
		scanOrd[ch] = i
	}

	// Conflict components: union streams that share any channel.
	parent := make([]int, set.Len())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	firstUser := make(map[topology.Channel]int)
	for _, st := range set.Streams {
		for _, ch := range st.Path.Channels {
			if u, ok := firstUser[ch]; ok {
				parent[find(int(st.ID))] = find(u)
			} else {
				firstUser[ch] = int(st.ID)
			}
		}
	}
	members := make(map[int][]int)
	var roots []int
	for i := range parent {
		r := find(i)
		if _, ok := members[r]; !ok {
			roots = append(roots, r)
		}
		members[r] = append(members[r], i)
	}
	sort.Ints(roots)

	for _, r := range roots {
		ids := members[r] // ascending: appended in stream order
		s.comps = append(s.comps, newComp(s, ids, scanOrd, prioIdx, vcsPerLink))
	}
	return s, nil
}

// withDefaults mirrors sim.Config.withDefaults: the two engines must
// accept and reject exactly the same configurations.
func withDefaults(c sim.Config, n int) (sim.Config, error) {
	out := c
	if out.Cycles <= 0 {
		return out, fmt.Errorf("eventsim: cycles %d must be positive", out.Cycles)
	}
	if out.Warmup < 0 || out.Warmup >= out.Cycles {
		return out, fmt.Errorf("eventsim: warmup %d out of range [0,%d)", out.Warmup, out.Cycles)
	}
	if out.BufferDepth == 0 {
		out.BufferDepth = 2
	}
	if out.BufferDepth < 1 {
		return out, fmt.Errorf("eventsim: buffer depth %d must be >= 1", out.BufferDepth)
	}
	if out.SporadicJitter < 0 {
		return out, fmt.Errorf("eventsim: sporadic jitter %d must be >= 0", out.SporadicJitter)
	}
	if out.Offsets != nil && len(out.Offsets) != n {
		return out, fmt.Errorf("eventsim: %d offsets for %d streams", len(out.Offsets), n)
	}
	for i, o := range out.Offsets {
		if o < 0 {
			return out, fmt.Errorf("eventsim: offset[%d] = %d must be >= 0", i, o)
		}
	}
	return out, nil
}

// newResult mirrors sim's result construction.
func newResult(set *stream.Set, cfg sim.Config) *sim.Result {
	r := &sim.Result{
		Cycles:             cfg.Cycles,
		Warmup:             cfg.Warmup,
		Arbiter:            cfg.Arbiter,
		PerStream:          make([]sim.StreamStats, set.Len()),
		PerChannel:         make(map[topology.Channel]sim.ChannelStats),
		FirstDeadlockCycle: -1,
	}
	for i := range r.PerStream {
		r.PerStream[i].ID = stream.ID(i)
	}
	return r
}

// Run simulates every conflict component to completion and merges the
// per-component statistics. Per-stream and per-channel entries never
// overlap between components, so the merge is a disjoint union; only
// the scalar tallies need summing.
func (s *Simulator) Run() *sim.Result {
	for _, c := range s.comps {
		c.run()
		s.res.Unfinished += c.unfinished
		if c.firstDeadlock >= 0 &&
			(s.res.FirstDeadlockCycle < 0 || c.firstDeadlock < s.res.FirstDeadlockCycle) {
			s.res.FirstDeadlockCycle = c.firstDeadlock
		}
	}
	return s.res
}
