package eventsim

import "testing"

// TestStairTimeAgainstStairT pins the closed-form staircase crossing
// times against the general boundary maximisation, over every
// staircase snapshot prefix of every small shape.
func TestStairTimeAgainstStairT(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		for H := 1; H <= 5; H++ {
			for C := 1; C <= 5; C++ {
				c := &comp{depth: d}
				const t0 = 100
				for a := 0; a <= 2*(H+2*C); a++ {
					snap := make([]int, H)
					for j := 0; j < H; j++ {
						snap[j] = stairCrossed(a, j, C, d, H)
					}
					if snap[H-1] >= C {
						continue
					}
					tc := t0 + a
					for j := 0; j < H; j++ {
						for k := snap[j] + 1; k <= C; k++ {
							want := c.stairT(snap, tc, k, j, H)
							got := stairTime(t0, k, j, d, H)
							if got != want {
								t.Fatalf("d=%d H=%d C=%d a=%d j=%d k=%d: stairTime=%d stairT=%d",
									d, H, C, a, j, k, got, want)
							}
						}
					}
				}
			}
		}
	}
}
