package eventsim

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/topology"
)

const (
	modeJump  = iota // every in-flight message on its analytic staircase
	modeCycle        // exact per-cycle kernel (port of package sim's loop)
)

// ipair records one shared link between two stream paths: path index
// pa on the first stream, pb on the second.
type ipair struct {
	pa, pb int
}

// cmsg is the kernel's in-flight message instance — a field-for-field
// port of sim's message (minus tracing), pooled and recycled the same
// way.
type cmsg struct {
	st      *stream.Stream
	li      int // local stream index within the component
	links   []*clink
	ords    []int32
	buf     []int
	seq     int
	genTime int
	crossed []int
	vcHeld  []int
	lo      int
	// Router-pipeline state, used only when RouterLatency > 0.
	visible  []int
	inflight [][]int
	arrival  int64
	prio     int

	hadCandidate bool
	advanced     bool
	stale        int
	flagged      bool

	// Park bookkeeping: advPrev/candPrev are last cycle's activity
	// flags, preserved across accountStalls' reset so tryRefresh can
	// classify the message; parkFrom is the first frozen cycle.
	advPrev  bool
	candPrev bool
	parkFrom int
}

func (m *cmsg) hops() int { return len(m.crossed) }

func (m *cmsg) headerAt() int {
	for i := m.lo; i < len(m.crossed); i++ {
		if m.crossed[i] == 0 {
			return i
		}
	}
	return m.hops()
}

type cvc struct {
	owner *cmsg
}

// clink is one directed physical channel of the component. The cycle
// engine tracks busy cycles and flit counts separately but increments
// them together on every crossing, so one counter serves both.
type clink struct {
	ch      topology.Channel
	vcs     []cvc
	pending []*cmsg
	flits   int
	queued  bool
}

func (l *clink) removePending(m *cmsg) {
	for i, p := range l.pending {
		if p == m {
			l.pending = append(l.pending[:i], l.pending[i+1:]...)
			return
		}
	}
}

type ccand struct {
	m   *cmsg
	idx int
}

// comp is one conflict component: streams whose paths are transitively
// connected through shared channels, simulated to completion with no
// reference to any other component.
type comp struct {
	cfg   *sim.Config
	res   *sim.Result
	sched *schedule

	// Static tables in the component's local index spaces.
	streams   []*stream.Stream // ascending stream ID
	gidx      []int            // global stream index per local stream
	links     []*clink         // in the cycle engine's channel scan order
	pathLinks [][]*clink       // per local stream, per hop
	pathOrds  [][]int32        // per local stream: local link ordinals
	prio      []int            // priority level index per local stream
	rl        int
	depth     int
	strict    bool

	// Analytic free-flow constants (meaningful only when jumpable):
	// lat[li] is the unloaded latency, wl[li] the per-link occupancy
	// window length, and pairs[a][b] the shared-link index pairs of
	// local streams a and b (a == b gives the identity pairs, which
	// make back-to-back instances of one stream check against each
	// other).
	jumpable bool
	schemeVC bool // arbiter grants a free-flowing header its own-priority VC
	lat      []int
	wl       []int
	pairs    [][][]ipair

	// Release cursors per local stream.
	nextRel []int
	relIdx  []int
	nextSeq []int

	// Jump-mode state: analytic flights, in release order.
	flights []*flight
	fpool   []*flight

	// Materialisation scratch (stamp-order computation).
	ordKeys   []flightOrder
	ordIdx    []int
	ordStamps []int64

	// Refresh scratch: per-active staircase flags for the clash screen.
	stairBuf []bool

	// Cycle-kernel state (port of sim.Simulator's fields).
	active   []*cmsg
	retired  []*cmsg
	free     []*cmsg
	waiting  []*clink
	candMask []uint64
	candBest []ccand
	stamp    int64
	now      int
	mode     int
	nextTry  int     // earliest cycle worth re-attempting tryRefresh
	reentry  int     // scheduled first-interaction cycle for kernel re-entry
	parked   []*cmsg // statically blocked messages frozen through jump mode

	unfinished    int
	firstDeadlock int
}

func newComp(s *Simulator, ids []int, scanOrd map[topology.Channel]int, prioIdx map[int]int, vcsPerLink int) *comp {
	c := &comp{
		cfg:           &s.cfg,
		res:           s.res,
		sched:         s.sched,
		rl:            s.set.RouterLatency,
		depth:         s.cfg.BufferDepth,
		firstDeadlock: -1,
		reentry:       farCycle,
	}
	c.strict = s.cfg.StrictPhysicalPriority &&
		s.cfg.Arbiter != sim.NonPreemptiveFIFO && s.cfg.Arbiter != sim.NonPreemptivePriority
	c.schemeVC = s.cfg.Arbiter == sim.Preemptive || s.cfg.Arbiter == sim.Li
	c.jumpable = c.rl == 0
	if c.jumpable {
		c.mode = modeJump
	} else {
		c.mode = modeCycle
	}
	n := len(ids)
	c.streams = make([]*stream.Stream, n)
	c.gidx = make([]int, n)
	for li, gi := range ids {
		c.streams[li] = s.set.Get(stream.ID(gi))
		c.gidx[li] = gi
	}

	// Component links, keeping the global scan order so the kernel's
	// flit-movement sweep matches the oracle's visiting order.
	seen := make(map[topology.Channel]bool)
	var chans []topology.Channel
	for _, st := range c.streams {
		for _, ch := range st.Path.Channels {
			if !seen[ch] {
				seen[ch] = true
				chans = append(chans, ch)
			}
		}
	}
	sort.Slice(chans, func(i, j int) bool { return scanOrd[chans[i]] < scanOrd[chans[j]] })
	arr := make([]clink, len(chans))
	byChan := make(map[topology.Channel]int32, len(chans))
	for i, ch := range chans {
		arr[i] = clink{ch: ch, vcs: make([]cvc, vcsPerLink)}
		c.links = append(c.links, &arr[i])
		byChan[ch] = int32(i)
	}
	c.candMask = make([]uint64, (len(chans)+63)/64)
	c.candBest = make([]ccand, len(chans))

	c.pathLinks = make([][]*clink, n)
	c.pathOrds = make([][]int32, n)
	c.prio = make([]int, n)
	c.lat = make([]int, n)
	c.wl = make([]int, n)
	for li, st := range c.streams {
		hop := make([]*clink, len(st.Path.Channels))
		ords := make([]int32, len(st.Path.Channels))
		for i, ch := range st.Path.Channels {
			ords[i] = byChan[ch]
			hop[i] = c.links[ords[i]]
		}
		c.pathLinks[li] = hop
		c.pathOrds[li] = ords
		c.prio[li] = prioIdx[st.Priority]
		H, C := st.Path.Hops(), st.Length
		if c.depth >= 2 || H == 1 {
			c.lat[li] = H + C - 1
		} else {
			c.lat[li] = H + 2*C - 2
		}
		c.wl[li] = c.lat[li] - H + 1
	}
	c.pairs = make([][][]ipair, n)
	for a := range c.streams {
		c.pairs[a] = make([][]ipair, n)
		for b := range c.streams {
			var ps []ipair
			for pa, cha := range c.streams[a].Path.Channels {
				for pb, chb := range c.streams[b].Path.Channels {
					if cha == chb {
						ps = append(ps, ipair{pa, pb})
					}
				}
			}
			c.pairs[a][b] = ps
		}
	}

	c.nextRel = make([]int, n)
	c.relIdx = make([]int, n)
	c.nextSeq = make([]int, n)
	for li := range c.streams {
		c.nextRel[li], c.relIdx[li] = c.sched.start(c.gidx[li])
	}
	return c
}

// run simulates the component to the configured horizon, alternating
// between analytic jump mode and the exact cycle kernel, then settles
// the end-of-run accounting.
func (c *comp) run() {
	if c.runSolo() {
		return
	}
	cycles := c.cfg.Cycles
	for c.now < cycles {
		if c.mode == modeJump {
			c.jumpStep()
			continue
		}
		// With nothing in flight the kernel state cannot change until
		// the next release: skip the gap. (When jump mode is available
		// tryRefresh already escapes this state; this is the idle
		// skipping that remains with RouterLatency > 0.)
		if len(c.active) == 0 {
			t := cycles
			for li := range c.streams {
				if c.nextRel[li] < t {
					t = c.nextRel[li]
				}
			}
			if t >= cycles {
				c.now = cycles
				break
			}
			c.now = t
		}
		retired := c.kernelCycle()
		if retired {
			// A retirement invalidates any scheduled-retry estimate:
			// the window set it was computed from no longer exists.
			c.nextTry = 0
		}
		if c.now < cycles && (retired || c.now >= c.nextTry) {
			c.tryRefresh()
		}
	}
	c.finish()
}

// kernelCycle executes one exact simulation cycle — the same phase
// sequence as sim.Simulator.Run — and reports whether any message
// retired. A retirement makes a refresh immediately worth attempting;
// a release never does (it only adds windows), so between retirements
// attempts run on the nextTry schedule instead.
func (c *comp) kernelCycle() bool {
	c.release()
	if c.cfg.DropLate {
		c.dropLate()
	}
	if c.rl > 0 {
		c.promote()
	}
	c.assignVCs()
	c.collectCandidates()
	c.moveFlits()
	c.accountStalls()
	retired := len(c.retired) > 0
	c.free = append(c.free, c.retired...)
	c.retired = c.retired[:0]
	c.now++
	return retired
}

func (c *comp) release() {
	for li, st := range c.streams {
		for c.nextRel[li] <= c.now {
			m := c.newMessage(li, c.nextSeq[li], c.nextRel[li])
			c.stamp++
			m.arrival = c.stamp
			c.nextSeq[li]++
			c.nextRel[li], c.relIdx[li] = c.sched.advance(c.gidx[li], c.nextRel[li], c.relIdx[li])
			c.active = append(c.active, m)
			c.res.PerStream[st.ID].Generated++
			c.addPending(m.links[0], m)
		}
	}
}

func (c *comp) newMessage(li, seq, genTime int) *cmsg {
	st := c.streams[li]
	hops := st.Path.Hops()
	n := 2 * hops
	if c.rl > 0 {
		n = 3 * hops
	}
	var m *cmsg
	if k := len(c.free); k > 0 {
		m = c.free[k-1]
		c.free = c.free[:k-1]
	} else {
		m = &cmsg{}
	}
	buf := m.buf
	if cap(buf) < n {
		buf = make([]int, n)
	} else {
		buf = buf[:n]
		clear(buf)
	}
	inflight := m.inflight
	*m = cmsg{
		st:      st,
		li:      li,
		links:   c.pathLinks[li],
		ords:    c.pathOrds[li],
		buf:     buf,
		seq:     seq,
		genTime: genTime,
		crossed: buf[0:hops:hops],
		vcHeld:  buf[hops : 2*hops : 2*hops],
		prio:    c.prio[li],
	}
	if c.rl > 0 {
		m.visible = buf[2*hops : 3*hops : 3*hops]
		if cap(inflight) < hops {
			inflight = make([][]int, hops)
		} else {
			inflight = inflight[:hops]
			for j := range inflight {
				inflight[j] = inflight[j][:0]
			}
		}
		m.inflight = inflight
	}
	for j := range m.vcHeld {
		m.vcHeld[j] = -1
	}
	return m
}

func (c *comp) addPending(l *clink, m *cmsg) {
	l.pending = append(l.pending, m)
	if !l.queued {
		l.queued = true
		c.waiting = append(c.waiting, l)
	}
}

func (c *comp) assignVCs() {
	kept := c.waiting[:0]
	for _, l := range c.waiting {
		if len(l.pending) == 0 {
			l.queued = false
			continue
		}
		switch c.cfg.Arbiter {
		case sim.Preemptive:
			sortPending(l, true)
			rest := l.pending[:0]
			for _, m := range l.pending {
				idx := pathIndex(m, l)
				if l.vcs[m.prio].owner == nil {
					l.vcs[m.prio].owner = m
					m.vcHeld[idx] = m.prio
				} else {
					rest = append(rest, m)
				}
			}
			l.pending = rest
		case sim.Li:
			sortPending(l, true)
			rest := l.pending[:0]
			for _, m := range l.pending {
				idx := pathIndex(m, l)
				got := -1
				for v := m.prio; v >= 0; v-- {
					if l.vcs[v].owner == nil {
						got = v
						break
					}
				}
				if got >= 0 {
					l.vcs[got].owner = m
					m.vcHeld[idx] = got
				} else {
					rest = append(rest, m)
				}
			}
			l.pending = rest
		case sim.NonPreemptiveFIFO, sim.NonPreemptivePriority:
			sortPending(l, c.cfg.Arbiter == sim.NonPreemptivePriority)
			if l.vcs[0].owner == nil {
				m := l.pending[0]
				idx := pathIndex(m, l)
				l.vcs[0].owner = m
				m.vcHeld[idx] = 0
				l.pending = l.pending[1:]
			}
		}
		if len(l.pending) > 0 {
			kept = append(kept, l)
		} else {
			l.queued = false
		}
	}
	c.waiting = kept
}

func sortPending(l *clink, byPriority bool) {
	p := l.pending
	for i := 1; i < len(p); i++ {
		m := p[i]
		j := i
		for j > 0 && pendingBefore(m, p[j-1], byPriority) {
			p[j] = p[j-1]
			j--
		}
		p[j] = m
	}
}

func pendingBefore(a, b *cmsg, byPriority bool) bool {
	if byPriority && a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.arrival < b.arrival
}

func pathIndex(m *cmsg, l *clink) int {
	i := m.headerAt()
	if i >= m.hops() || m.links[i] != l {
		panic(fmt.Sprintf("eventsim: message %d/%d header not at link %s", m.st.ID, m.seq, l.ch))
	}
	return i
}

func (c *comp) collectCandidates() {
	rl, depth := c.rl, c.depth
	for _, m := range c.active {
		C := m.st.Length
		crossed, vcHeld := m.crossed, m.vcHeld
		for i := m.lo; i < len(crossed); i++ {
			if vcHeld[i] < 0 {
				break
			}
			if crossed[i] >= C {
				continue
			}
			if i > 0 {
				avail := crossed[i-1]
				if rl > 0 {
					avail = m.visible[i]
				}
				if avail <= crossed[i] {
					continue
				}
			}
			if i+1 < len(crossed) {
				occ := crossed[i] - crossed[i+1]
				if rl > 0 {
					occ = m.visible[i+1] - crossed[i+1]
				}
				if occ >= depth {
					continue
				}
			}
			ord := m.ords[i]
			w, bit := ord>>6, uint64(1)<<(uint32(ord)&63)
			if c.candMask[w]&bit == 0 {
				c.candMask[w] |= bit
				c.candBest[ord] = ccand{m: m, idx: i}
			} else if b := &c.candBest[ord]; vcHeld[i] > b.m.vcHeld[b.idx] {
				c.candBest[ord] = ccand{m: m, idx: i}
			}
			m.hadCandidate = true
		}
	}
}

func (c *comp) moveFlits() {
	for w, word := range c.candMask {
		if word == 0 {
			continue
		}
		c.candMask[w] = 0
		for ; word != 0; word &= word - 1 {
			ord := w<<6 + bits.TrailingZeros64(word)
			cb := c.candBest[ord]
			l := c.links[ord]
			if c.strict {
				top := -1
				for v := len(l.vcs) - 1; v >= 0; v-- {
					if l.vcs[v].owner != nil {
						top = v
						break
					}
				}
				if cb.m.vcHeld[cb.idx] != top {
					continue
				}
			}
			c.advance(l, &cb)
		}
	}
}

func (c *comp) advance(l *clink, cb *ccand) {
	m, i := cb.m, cb.idx
	m.crossed[i]++
	m.advanced = true
	l.flits++
	if i+1 < m.hops() {
		if c.rl > 0 {
			m.inflight[i+1] = append(m.inflight[i+1], c.now)
		} else if m.crossed[i] == 1 {
			c.stamp++
			m.arrival = c.stamp
			c.addPending(m.links[i+1], m)
		}
	}
	if m.crossed[i] == m.st.Length {
		vcIdx := m.vcHeld[i]
		l.vcs[vcIdx].owner = nil
		m.vcHeld[i] = -1
		if i == m.lo {
			m.lo++
		}
		if i == m.hops()-1 {
			c.deliver(m)
		}
	}
}

func (c *comp) promote() {
	for _, m := range c.active {
		for i := 1; i < m.hops(); i++ {
			q := m.inflight[i]
			for len(q) > 0 && c.now-q[0] >= 1+c.rl {
				q = q[1:]
				m.visible[i]++
				if m.visible[i] == 1 {
					c.stamp++
					m.arrival = c.stamp
					c.addPending(m.links[i], m)
				}
			}
			m.inflight[i] = q
		}
	}
}

func (c *comp) dropLate() {
	kept := c.active[:0]
	for _, m := range c.active {
		if c.now-m.genTime <= m.st.Deadline {
			kept = append(kept, m)
			continue
		}
		h := m.headerAt()
		if h < m.hops() && m.vcHeld[h] < 0 {
			m.links[h].removePending(m)
		}
		for i, vcIdx := range m.vcHeld {
			if vcIdx >= 0 {
				m.links[i].vcs[vcIdx].owner = nil
				m.vcHeld[i] = -1
			}
		}
		c.res.PerStream[m.st.ID].Dropped++
		c.retired = append(c.retired, m)
	}
	c.active = kept
}

func (c *comp) accountStalls() {
	for _, m := range c.active {
		if m.genTime >= c.cfg.Warmup {
			st := &c.res.PerStream[m.st.ID]
			switch {
			case m.advanced:
				st.ProgressCycles++
			case m.hadCandidate:
				st.ArbStallCycles++
			case func() bool { h := m.headerAt(); return h < m.hops() && m.vcHeld[h] < 0 }():
				st.VCStallCycles++
			default:
				st.BufferStallCycles++
			}
		}
		if c.cfg.DeadlockThreshold > 0 {
			holdsVC := false
			for _, v := range m.vcHeld {
				if v >= 0 {
					holdsVC = true
					break
				}
			}
			if m.advanced || !holdsVC {
				m.stale = 0
			} else {
				m.stale++
				if m.stale >= c.cfg.DeadlockThreshold && !m.flagged {
					m.flagged = true
					c.res.PerStream[m.st.ID].DeadlockSuspects++
					if c.firstDeadlock < 0 {
						c.firstDeadlock = c.now
					}
				}
			}
		}
		if m.advPrev && !m.advanced {
			// A free-flowing message just blocked: the park path opens,
			// so any scheduled-retry estimate computed under the old
			// regime is stale. (The opposite flip — a blocked message
			// resuming — keeps the screen's window-overlap estimate
			// valid: retiring traffic already forces an attempt.)
			c.nextTry = 0
		}
		m.advPrev = m.advanced
		m.candPrev = m.hadCandidate
		m.advanced = false
		m.hadCandidate = false
	}
}

func (c *comp) deliver(m *cmsg) {
	latency := c.now + 1 - m.genTime
	st := &c.res.PerStream[m.st.ID]
	st.Delivered++
	if m.genTime >= c.cfg.Warmup {
		observe(st, latency, m.st.Deadline)
	}
	for i, a := range c.active {
		if a == m {
			c.active = append(c.active[:i], c.active[i+1:]...)
			break
		}
	}
	c.retired = append(c.retired, m)
}

// observe mirrors sim.StreamStats.observe (unexported there); the
// differential battery pins the arithmetic.
func observe(st *sim.StreamStats, latency, deadline int) {
	st.Observed++
	st.Latencies.Observe(latency)
	st.SumLatency += int64(latency)
	if st.Observed == 1 || latency < st.MinLatency {
		st.MinLatency = latency
	}
	if latency > st.MaxLatency {
		st.MaxLatency = latency
	}
	if latency > deadline {
		st.Misses++
	}
}

// finish settles end-of-run accounting: unfinished messages in either
// representation and the per-channel activity flush.
func (c *comp) finish() {
	c.unfinished = len(c.active) + len(c.flights) + len(c.parked)
	for _, m := range c.active {
		c.res.PerStream[m.st.ID].Unfinished++
	}
	for _, m := range c.parked {
		c.res.PerStream[m.st.ID].Unfinished++
		if n := c.cfg.Cycles - m.parkFrom; n > 0 && m.genTime >= c.cfg.Warmup {
			st := &c.res.PerStream[m.st.ID]
			if m.candPrev {
				st.ArbStallCycles += n
			} else {
				st.VCStallCycles += n
			}
		}
	}
	for _, f := range c.flights {
		c.res.PerStream[c.streams[f.li].ID].Unfinished++
		c.creditFlight(f, c.cfg.Cycles)
	}
	for _, l := range c.links {
		if l.flits > 0 {
			c.res.PerChannel[l.ch] = sim.ChannelStats{BusyCycles: l.flits, Flits: l.flits}
		}
	}
}
