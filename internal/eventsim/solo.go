package eventsim

import "repro/internal/sim"

// runSolo is the batched fast path for a single-stream component whose
// release gap can never overlap its own occupancy window (period >=
// wl, and sporadic jitter only widens gaps). Every message then flies
// the identical from-release staircase: constant latency, constant
// per-link flit activity, and the same three outcomes the generic jump
// path produces — delivery, deadline drop at a constant age, or still
// in flight at the horizon. Each outcome's accounting mirrors
// deliverFlight / dropFlight / finish-with-creditFlight exactly, so
// the whole run folds into one arithmetic loop over release times.
// Reports whether it handled the run.
func (c *comp) runSolo() bool {
	if !c.jumpable || len(c.streams) != 1 {
		return false
	}
	st := c.streams[0]
	lat, wl := c.lat[0], c.wl[0]
	if st.Period < wl {
		return false
	}
	cycles, warmup := c.cfg.Cycles, c.cfg.Warmup
	ps := &c.res.PerStream[st.ID]
	links := c.pathLinks[0]
	H, C := st.Path.Hops(), st.Length
	// A message drops at age Deadline+1 only if it is still in flight
	// then (addFlight's rule); with constant latency that is a constant
	// property, as are the flit prefixes crossed by the drop cycle.
	drop := c.cfg.DropLate && lat >= st.Deadline+2
	var dropFlits []int
	if drop {
		dropFlits = make([]int, H)
		for i := 0; i < H; i++ {
			dropFlits[i] = stairCrossed(st.Deadline+1, i, C, c.depth, H)
		}
	}
	unfinished := 0
	rel, idx := c.nextRel[0], c.relIdx[0]
	for rel < cycles {
		ps.Generated++
		switch {
		case drop && rel+st.Deadline+1 < cycles:
			for i, l := range links {
				l.flits += dropFlits[i]
			}
			if rel >= warmup {
				ps.ProgressCycles += st.Deadline + 1
			}
			ps.Dropped++
		case drop || rel+lat-1 >= cycles:
			// Still in flight when the horizon (or, for a dropper, a
			// drop cycle at/after the horizon) cuts the run short.
			for i, l := range links {
				l.flits += stairCrossed(cycles-rel, i, C, c.depth, H)
			}
			if rel >= warmup {
				ps.ProgressCycles += cycles - rel
			}
			ps.Unfinished++
			unfinished++
		default:
			ps.Delivered++
			if rel >= warmup {
				observe(ps, lat, st.Deadline)
				ps.ProgressCycles += lat - 1
			}
			for _, l := range links {
				l.flits += C
			}
		}
		rel, idx = c.sched.advance(c.gidx[0], rel, idx)
	}
	c.nextRel[0], c.relIdx[0] = rel, idx
	c.now = cycles
	c.unfinished = unfinished
	for _, l := range c.links {
		if l.flits > 0 {
			c.res.PerChannel[l.ch] = sim.ChannelStats{BusyCycles: l.flits, Flits: l.flits}
		}
	}
	return true
}
