package eventsim

import (
	"math/rand"

	"repro/internal/sim"
	"repro/internal/stream"
)

// schedule is the global release plan. Periodic sources (no jitter)
// need only arithmetic — offset, offset+T, offset+2T, … — but sporadic
// sources consume draws from one shared RNG in the oracle's global
// interleaving (by cycle, then by stream index), which conflict
// components simulated independently cannot reproduce on the fly. For
// jitter runs the constructor therefore replays the draw sequence once
// up front and stores each stream's explicit release cycles.
type schedule struct {
	cycles  int
	periods []int
	starts  []int
	jit     [][]int // per-stream release cycles; nil when jitter == 0
}

func newSchedule(set *stream.Set, cfg sim.Config) *schedule {
	n := set.Len()
	sch := &schedule{
		cycles:  cfg.Cycles,
		periods: make([]int, n),
		starts:  make([]int, n),
	}
	for i, st := range set.Streams {
		sch.periods[i] = st.Period
	}
	if cfg.Offsets != nil {
		copy(sch.starts, cfg.Offsets)
	}
	if cfg.SporadicJitter == 0 {
		return sch
	}
	// Replay the oracle's draw order: the cycle engine releases stream
	// i at cycle v exactly when its next-release value reaches v (the
	// value never lags the clock, since periods are >= 1), and draws
	// one jitter sample per release, scanning streams in index order
	// within a cycle. Picking the minimum (value, stream) pair until
	// the horizon reproduces that order exactly.
	rng := rand.New(rand.NewSource(cfg.JitterSeed))
	next := make([]int, n)
	copy(next, sch.starts)
	sch.jit = make([][]int, n)
	for {
		best := -1
		for i := 0; i < n; i++ {
			if next[i] >= cfg.Cycles {
				continue
			}
			if best < 0 || next[i] < next[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		sch.jit[best] = append(sch.jit[best], next[best])
		next[best] += set.Streams[best].Period + rng.Intn(cfg.SporadicJitter+1)
	}
	return sch
}

// start returns stream gi's first release cycle and cursor position; a
// value at or beyond the horizon means the stream never releases.
func (sch *schedule) start(gi int) (rel, idx int) {
	if sch.jit != nil {
		if len(sch.jit[gi]) == 0 {
			return sch.cycles, 0
		}
		return sch.jit[gi][0], 0
	}
	return sch.starts[gi], 0
}

// advance consumes the release at (cur, idx) and returns the next
// one. Periodic streams never exhaust; sporadic streams return the
// horizon as a sentinel once the precomputed plan runs out.
func (sch *schedule) advance(gi, cur, idx int) (int, int) {
	if sch.jit != nil {
		if idx+1 >= len(sch.jit[gi]) {
			return sch.cycles, idx + 1
		}
		return sch.jit[gi][idx+1], idx + 1
	}
	return cur + sch.periods[gi], idx
}
