package eventsim

import "testing"

// caStep advances a solo free-flowing message one cycle: a flit
// crosses link i when the message still has flits to send there, the
// next flit has already arrived, and a downstream buffer slot is free.
// All decisions read the start-of-cycle state, exactly like the
// kernel.
func caStep(cr []int, C, d int) {
	H := len(cr)
	prev := cr[0]
	for i := 0; i < H; i++ {
		cur := cr[i]
		ok := cur < C && (i == 0 || prev > cur) && (i == H-1 || cur-cr[i+1] < d)
		prev = cur
		if ok {
			cr[i]++
		}
	}
}

// consistentStates enumerates every kernel-reachable solo state shape:
// monotone non-increasing flit counts with adjacent differences
// bounded by the buffer depth.
func consistentStates(H, C, d int) [][]int {
	var out [][]int
	var rec func(prefix []int)
	rec = func(prefix []int) {
		if len(prefix) == H {
			st := make([]int, H)
			copy(st, prefix)
			out = append(out, st)
			return
		}
		hi := C
		lo := 0
		if len(prefix) > 0 {
			hi = prefix[len(prefix)-1]
			lo = hi - d
			if lo < 0 {
				lo = 0
			}
		}
		for v := lo; v <= hi; v++ {
			rec(append(prefix, v))
		}
	}
	rec(nil)
	return out
}

// TestFlightMathAgainstCA pins the max-plus closed forms (flightT,
// crossedAt) against a brute-force solo simulation from every
// consistent snapshot state, over all small shapes and buffer depths.
func TestFlightMathAgainstCA(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4} {
		for H := 1; H <= 4; H++ {
			for C := 1; C <= 4; C++ {
				c := &comp{depth: d}
				for _, snap := range consistentStates(H, C, d) {
					if snap[H-1] >= C {
						continue // already delivered
					}
					const tc = 37
					f := &flight{tc: tc, snap: snap, gen: true}
					cr := make([]int, H)
					copy(cr, snap)
					deliver := c.flightT(f, C, H-1, C, H)
					for now := tc; now <= deliver+2; now++ {
						for j := 0; j < H; j++ {
							if got := c.crossedAt(f, j, now, C, H); got != cr[j] {
								t.Fatalf("d=%d H=%d C=%d snap=%v: crossedAt(j=%d, t=%d) = %d, CA has %d",
									d, H, C, snap, j, now, got, cr[j])
							}
						}
						if cr[H-1] == C && now <= deliver {
							t.Fatalf("d=%d H=%d C=%d snap=%v: CA delivered before predicted %d (now=%d)",
								d, H, C, snap, deliver, now)
						}
						caStep(cr, C, d)
						if now == deliver && cr[H-1] != C {
							t.Fatalf("d=%d H=%d C=%d snap=%v: predicted delivery %d but CA not done: %v",
								d, H, C, snap, deliver, cr)
						}
					}
				}
			}
		}
	}
}
