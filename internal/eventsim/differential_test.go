package eventsim_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/eventsim"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/topology"
	"repro/internal/workload"
)

// runBoth runs the cycle oracle and the event engine on identical
// inputs and fails unless the results are deeply identical — every
// per-stream counter, the full latency histograms, every per-channel
// tally, and the run-level scalars.
func runBoth(t *testing.T, set *stream.Set, cfg sim.Config, label string) {
	t.Helper()
	o, err := sim.New(set, cfg)
	if err != nil {
		t.Fatalf("%s: sim.New: %v", label, err)
	}
	e, err := eventsim.New(set, cfg)
	if err != nil {
		t.Fatalf("%s: eventsim.New: %v", label, err)
	}
	want := o.Run()
	got := e.Run()
	if reflect.DeepEqual(want, got) {
		return
	}
	for i := range want.PerStream {
		if !reflect.DeepEqual(want.PerStream[i], got.PerStream[i]) {
			t.Fatalf("%s: stream %d differs:\n cycle: %+v\n event: %+v",
				label, i, want.PerStream[i], got.PerStream[i])
		}
	}
	if !reflect.DeepEqual(want.PerChannel, got.PerChannel) {
		t.Fatalf("%s: per-channel stats differ:\n cycle: %v\n event: %v",
			label, want.PerChannel, got.PerChannel)
	}
	t.Fatalf("%s: results differ: cycle {Unfinished:%d FirstDeadlock:%d}, event {Unfinished:%d FirstDeadlock:%d}",
		label, want.Unfinished, want.FirstDeadlockCycle, got.Unfinished, got.FirstDeadlockCycle)
}

// TestDifferentialBattery pins the event engine against the cycle
// oracle over generated §5-style workloads: five topologies, three
// generator seeds each, every arbiter, both interesting buffer depths,
// and one extra knob at a time (strict arbitration, deadline drops,
// sporadic jitter, release offsets, deadlock detection) — 720 full
// simulations compared stat for stat.
func TestDifferentialBattery(t *testing.T) {
	topos := []struct {
		name    string
		streams int
		plevels int
	}{
		{"mesh2d-6x6", 14, 4},
		{"mesh2d-10x10", 20, 4},
		{"ring-8", 8, 3},
		{"hypercube-3", 7, 2},
		{"torus2d-4x4", 12, 4},
	}
	arbs := []sim.ArbiterKind{sim.Preemptive, sim.NonPreemptiveFIFO, sim.NonPreemptivePriority, sim.Li}
	extras := []string{"plain", "strict", "droplate", "jitter", "offsets", "deadlock"}
	total := 0
	for _, tp := range topos {
		topo, err := topology.Parse(tp.name)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			wcfg := workload.PaperDefaults(tp.streams, tp.plevels, seed)
			set, _, err := workload.GenerateOn(topo, wcfg)
			if err != nil {
				t.Fatalf("%s/seed%d: %v", tp.name, seed, err)
			}
			for _, arb := range arbs {
				for _, depth := range []int{1, 2} {
					for _, extra := range extras {
						cfg := sim.Config{Cycles: 1200, Warmup: 100, Arbiter: arb, BufferDepth: depth}
						switch extra {
						case "strict":
							cfg.StrictPhysicalPriority = true
						case "droplate":
							cfg.DropLate = true
						case "jitter":
							cfg.SporadicJitter = 9
							cfg.JitterSeed = seed * 7
						case "offsets":
							offs := make([]int, set.Len())
							for i := range offs {
								offs[i] = (i * 11) % 17
							}
							cfg.Offsets = offs
						case "deadlock":
							cfg.DeadlockThreshold = 40
						}
						runBoth(t, set, cfg,
							fmt.Sprintf("%s/seed%d/%v/d%d/%s", tp.name, seed, arb, depth, extra))
						total++
					}
				}
			}
		}
	}
	if total < 500 {
		t.Fatalf("battery ran %d configs, want >= 500", total)
	}
	t.Logf("differential battery: %d configs byte-identical", total)
}

func mustAdd(t *testing.T, set *stream.Set, r routing.Router, sp [6]int) {
	t.Helper()
	if _, err := set.Add(r, topology.NodeID(sp[0]), topology.NodeID(sp[1]), sp[2], sp[3], sp[4], sp[5]); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialStress hammers the regimes the generated workloads
// rarely reach: periods shorter than the unloaded latency (back-to-back
// instances of one stream in flight), heavy funnel contention on shared
// links, single-hop paths, and single-flit messages — the cases that
// exercise every jump→cycle→jump transition path.
func TestDifferentialStress(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	r := routing.NewXY(m)
	builders := []struct {
		name  string
		specs [][6]int
	}{
		// One stream, 6 hops, 8 flits (L=13 at depth 2), period 5:
		// permanently overlapping with itself.
		{"selfoverlap", [][6]int{{0, 15, 1, 5, 8, 40}}},
		// Three streams sharing the top row eastbound, periods near L.
		{"sharedpath", [][6]int{
			{0, 3, 3, 11, 4, 30},
			{1, 3, 2, 13, 6, 30},
			{2, 3, 1, 9, 3, 30},
		}},
		// Funnel: four streams converging on node 5 from all sides.
		{"funnel", [][6]int{
			{4, 5, 4, 8, 5, 25},
			{6, 5, 3, 10, 4, 25},
			{1, 5, 2, 9, 6, 25},
			{9, 5, 1, 7, 3, 25},
		}},
		// Degenerate shapes: single-hop path, single-flit messages, a
		// long worm on a short period, all crossing at node 1.
		{"degenerate", [][6]int{
			{0, 1, 2, 4, 1, 12},
			{1, 2, 1, 6, 9, 18},
			{5, 1, 3, 5, 1, 10},
		}},
	}
	arbs := []sim.ArbiterKind{sim.Preemptive, sim.NonPreemptiveFIFO, sim.NonPreemptivePriority, sim.Li}
	for _, b := range builders {
		set := stream.NewSet(m)
		for _, sp := range b.specs {
			mustAdd(t, set, r, sp)
		}
		for _, arb := range arbs {
			for _, depth := range []int{1, 2, 3} {
				for _, extra := range []string{"plain", "strict", "droplate", "deadlock", "warmup0"} {
					cfg := sim.Config{Cycles: 2000, Warmup: 150, Arbiter: arb, BufferDepth: depth}
					switch extra {
					case "strict":
						cfg.StrictPhysicalPriority = true
					case "droplate":
						cfg.DropLate = true
					case "deadlock":
						cfg.DeadlockThreshold = 20
					case "warmup0":
						cfg.Warmup = 0
					}
					runBoth(t, set, cfg,
						fmt.Sprintf("%s/%v/d%d/%s", b.name, arb, depth, extra))
				}
			}
		}
	}
}

// TestDifferentialRouterLatency pins the cycle-mode-only path: with a
// router pipeline the staircase forms do not apply, so the event
// engine must fall back to pure (component-decomposed, idle-skipping)
// cycle stepping and still match exactly.
func TestDifferentialRouterLatency(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	r := routing.NewXY(m)
	for rl := 1; rl <= 2; rl++ {
		set := stream.NewSetWithRouterLatency(m, rl)
		for _, sp := range [][6]int{
			{0, 15, 3, 40, 6, 120},
			{3, 12, 2, 35, 4, 110},
			{5, 6, 1, 25, 8, 90},
			{4, 7, 2, 50, 3, 100},
		} {
			mustAdd(t, set, r, sp)
		}
		for _, arb := range []sim.ArbiterKind{sim.Preemptive, sim.Li} {
			for _, depth := range []int{1, 2} {
				for _, drop := range []bool{false, true} {
					cfg := sim.Config{Cycles: 1500, Warmup: 100, Arbiter: arb, BufferDepth: depth, DropLate: drop}
					runBoth(t, set, cfg, fmt.Sprintf("rl%d/%v/d%d/drop%v", rl, arb, depth, drop))
				}
			}
		}
	}
}

// TestDifferentialLongHorizon runs the exact §5 benchmark workload
// (20 streams, 4 levels, seed 555) for the full 30000-cycle horizon —
// the configuration BenchmarkEventSim measures must also be the
// configuration proven identical.
func TestDifferentialLongHorizon(t *testing.T) {
	if testing.Short() {
		t.Skip("long horizon differential skipped in -short")
	}
	set, _, err := workload.Generate(workload.PaperDefaults(20, 4, 555))
	if err != nil {
		t.Fatal(err)
	}
	for _, arb := range []sim.ArbiterKind{sim.Preemptive, sim.NonPreemptiveFIFO, sim.Li} {
		cfg := sim.Config{Cycles: 30000, Warmup: 200, Arbiter: arb}
		runBoth(t, set, cfg, fmt.Sprintf("paper/%v", arb))
	}
}
