package eventsim

import "repro/internal/sim"

// farCycle is the "never" sentinel for scheduled cycles; it exceeds any
// horizon by orders of magnitude.
const farCycle = 1 << 30

// reentryGap is the minimum head start (in cycles) that makes deferring
// a detected future window overlap worthwhile: committing to jump mode
// and rematerialising at the interaction cycle costs about as much as a
// handful of exact kernel cycles.
const reentryGap = 3

// flight is a message in analytic free flow: its future trajectory is
// fully determined, so only scheduled endpoints and (for messages that
// spent time in the kernel) a state snapshot are stored. Flights exist
// only while no occupancy windows overlap, which is exactly the regime
// in which the cycle kernel would grant every request immediately.
//
// Two kinds share the struct. A fresh flight (gen == false) was
// released in jump mode and follows the from-release staircase, whose
// closed forms live in the lat/wl tables. A generalized flight
// (gen == true) was converted out of the cycle kernel mid-path: snap
// holds its per-link flit counts at conversion time tc, and win holds
// the projected [first, last] crossing cycles per path link, computed
// by flightT from the max-plus dependency closure of the snapshot.
type flight struct {
	li      int // local stream index
	seq     int
	t0      int // release cycle
	tc      int // conversion cycle (== t0 for fresh flights)
	deliver int // cycle during which the tail crosses the final link
	drop    int // deadline-drop cycle (DropLate), or -1
	// acct is the number of cycles since t0 whose statistics — progress
	// cycles and per-link flit crossings — are already booked: zero for
	// a message released in jump mode, tc-t0 for one that spent its
	// first cycles in the kernel (which accounts as it goes). The flit
	// prefix already booked is snap itself for generalized flights.
	acct int

	gen  bool
	stc  bool  // snapshot is the pure from-release staircase (never stalled)
	hvc  bool  // header held its VC (granted, not yet crossed) at tc
	h0   int   // header link at tc, capped at H-1
	arr  int64 // kernel arrival stamp at tc, for materialise ordering
	snap []int // per-link flits crossed at start of cycle tc
	win  []int // per-link projected first/last crossing cycles (2 ints each)
}

// stairCrossed is the from-release free-flow trajectory: the number of
// flits that have crossed path channel i at the start of cycle t0+a.
// With buffer depth >= 2 the pipeline streams one flit per cycle per
// link; with depth 1 each link sustains every other cycle (except a
// single-hop path, where no downstream buffer constrains the source).
func stairCrossed(a, i, C, depth, H int) int {
	var v int
	if depth >= 2 || H == 1 {
		v = a - i
	} else {
		v = (a - i + 1) / 2 // ceil((a-i)/2) for a >= i
	}
	if v < 0 {
		return 0
	}
	if v > C {
		return C
	}
	return v
}

// stairTime inverts stairCrossed: the cycle during which flit k
// (1-based) crosses path link j in from-release free flow starting at
// t0. It is the closed form of stairT on a pure staircase snapshot.
func stairTime(t0, k, j, depth, H int) int {
	switch {
	case H == 1:
		return t0 + k - 1
	case depth >= 2:
		return t0 + k - 1 + j
	default:
		return t0 + 2*(k-1) + j
	}
}

// flightT returns the cycle during which flit k (1-based, k > snap[j])
// crosses path link j in solo free flow from f's snapshot. The solo
// kernel saturates three lower bounds — a flit arrives before it
// crosses, each link crosses one flit per cycle, and a flit needs a
// free downstream buffer slot — so the earliest schedule is the
// longest dependency path from any boundary cell (snap[j0]+1, j0) at
// base time tc. Path steps cost one cycle each: forward (0,+1), next
// flit (+1,0), and buffer back-pressure (+depth,-1); maximising over
// the step mix gives, per boundary link j0 with e = max(0, j0-j)
// upstream hops, a length of (j-j0)+(k-k0)-(depth-2)e for depth >= 2
// (reachable when k-k0 >= depth*e) and (j-j0)+2(k-k0) for depth 1
// (reachable when k-k0 >= e). A single-hop path has no downstream
// buffer, so its only term is k-k0. Every cell on such a path is
// uncrossed at tc (induction over the step kinds using the buffer
// invariant snap[j]-snap[j+1] <= depth), so no constraint is phantom.
func (c *comp) flightT(f *flight, k, j, C, H int) int {
	if f.stc {
		return stairTime(f.t0, k, j, c.depth, H)
	}
	return c.stairT(f.snap, f.tc, k, j, H)
}

// stairT is flightT on a raw state snapshot (per-link flits crossed at
// the start of cycle tc), used both by flights and by the park-wake
// bounds, which project directly from live kernel messages.
func (c *comp) stairT(snap []int, tc, k, j, H int) int {
	d := c.depth
	best := 0 // j0 == j always contributes k - snap[j] - 1 >= 0
	for j0 := 0; j0 < H; j0++ {
		k0 := snap[j0] + 1
		if k < k0 {
			continue
		}
		e := j0 - j
		if e < 0 {
			e = 0
		}
		var n int
		switch {
		case H == 1:
			n = k - k0
		case d == 1:
			if k-k0 < e {
				continue
			}
			n = (j - j0) + 2*(k-k0)
		default:
			if k-k0 < d*e {
				continue
			}
			n = (j - j0) + (k - k0) - (d-2)*e
		}
		if n > best {
			best = n
		}
	}
	return tc + best
}

// crossedAt inverts flightT: the number of flits that have crossed
// path link j at the start of cycle t. Each boundary term caps k at
// the largest value whose path length fits in t-1-tc; a term whose
// first reachable k already misses the budget caps just below its
// activation threshold instead (smaller k carries no constraint from
// that boundary).
func (c *comp) crossedAt(f *flight, j, t, C, H int) int {
	d := c.depth
	sj := f.snap[j]
	A := t - 1 - f.tc
	if A < 0 {
		return sj
	}
	if f.stc {
		return stairCrossed(t-f.t0, j, C, d, H)
	}
	kmax := C
	for j0 := 0; j0 < H; j0++ {
		k0 := f.snap[j0] + 1
		if k0 > C {
			continue
		}
		var bound, act int
		switch {
		case H == 1:
			bound, act = k0+A, k0
		case d == 1:
			num := A - (j - j0)
			q := num / 2
			if num < 0 && num%2 != 0 {
				q--
			}
			bound = k0 + q
			act = k0
			if j0 > j {
				act += j0 - j
			}
		default:
			e := j0 - j
			if e < 0 {
				e = 0
			}
			bound = k0 + A - (j - j0) + (d-2)*e
			act = k0 + d*e
		}
		if bound < act {
			bound = act - 1
		}
		if bound < kmax {
			kmax = bound
		}
	}
	if kmax < sj {
		return sj
	}
	return kmax
}

func (c *comp) newFlight() *flight {
	if k := len(c.fpool); k > 0 {
		f := c.fpool[k-1]
		c.fpool = c.fpool[:k-1]
		return f
	}
	return &flight{}
}

// jumpStep advances virtual time to the next event — release, delivery,
// deadline drop, or end of run — and processes every event scheduled
// there. Event order within one cycle mirrors the kernel's phase order:
// drops happen before releases (dropLate frees state before VC
// assignment), deliveries conceptually complete during the cycle. A
// release whose occupancy windows intersect any in-flight message's
// windows is not consumed; the component re-enters the exact cycle
// kernel at that cycle instead.
func (c *comp) jumpStep() {
	cycles := c.cfg.Cycles
	t := cycles
	for li := range c.streams {
		if c.nextRel[li] < t {
			t = c.nextRel[li]
		}
	}
	for _, f := range c.flights {
		e := f.deliver
		if f.drop >= 0 && f.drop < e {
			e = f.drop
		}
		if e < t {
			t = e
		}
	}
	if c.reentry < t {
		t = c.reentry
	}
	if t >= cycles {
		c.now = cycles
		return
	}
	if t == c.reentry {
		// The scheduled first interaction of two admitted messages:
		// resume exact stepping. Any release, drop, or delivery due
		// this same cycle is the kernel's to perform.
		c.enterCycleMode(t)
		return
	}
	if c.cfg.DropLate {
		kept := c.flights[:0]
		for _, f := range c.flights {
			if f.drop == t {
				c.dropFlight(f)
				c.fpool = append(c.fpool, f)
			} else {
				kept = append(kept, f)
			}
		}
		c.flights = kept
	}
	for li := range c.streams {
		if c.nextRel[li] != t {
			continue
		}
		cc := c.conflicts(li, t)
		if cc <= t {
			c.enterCycleMode(t)
			return
		}
		if cc < c.reentry {
			c.reentry = cc
		}
		c.addFlight(li, t)
	}
	kept := c.flights[:0]
	for _, f := range c.flights {
		if f.deliver == t {
			c.deliverFlight(f)
			c.fpool = append(c.fpool, f)
		} else {
			kept = append(kept, f)
		}
	}
	c.flights = kept
	c.now = t + 1
}

// flightWin returns flight f's occupancy window on its path link p:
// the cycles of its first and last remaining crossings there. Fresh
// flights use the staircase forms; generalized flights use the
// projected windows, which are empty (first > last) on links the tail
// already cleared before conversion.
func (c *comp) flightWin(f *flight, p int) (int, int) {
	if !f.gen {
		s := f.t0 + p
		return s, s + c.wl[f.li] - 1
	}
	return f.win[2*p], f.win[2*p+1]
}

// conflicts returns the first cycle at which a release of local stream
// li at cycle t would interact with an in-flight or parked message —
// the earliest cycle where it and a flight both occupy a shared link,
// or where it reaches a link whose VC state a parked message pins — or
// farCycle if no such cycle exists. Two free-flowing messages are
// independent until both are present at a common link, so solo free
// flow is exact strictly before the returned cycle. Against a parked
// message the criterion is the VC rule: only a strictly-higher-VC
// visitor passes through a parked hold unaffected and non-affecting
// (it takes a different VC, and where the parked message is itself a
// candidate it loses to the higher VC — precisely the coverage
// parkWakeArb counts on).
func (c *comp) conflicts(li, t int) int {
	cc := farCycle
	wlB := c.wl[li]
	for _, f := range c.flights {
		for _, p := range c.pairs[li][f.li] {
			bs := t + p.pa
			as, ae := c.flightWin(f, p.pb)
			if bs <= ae && as <= bs+wlB-1 {
				s := bs
				if as > s {
					s = as
				}
				if s < cc {
					cc = s
				}
			}
		}
	}
	if len(c.parked) > 0 {
		fv := 0
		if c.schemeVC {
			fv = c.prio[li]
		}
		for _, m := range c.parked {
			for _, p := range c.pairs[li][m.li] {
				if held := m.vcHeld[p.pb]; held < 0 || fv > held {
					continue
				}
				if s := t + p.pa; s < cc {
					cc = s
				}
			}
		}
	}
	return cc
}

// addFlight releases one message analytically.
func (c *comp) addFlight(li, t int) {
	st := c.streams[li]
	c.res.PerStream[st.ID].Generated++
	f := c.newFlight()
	f.li, f.seq, f.t0, f.tc = li, c.nextSeq[li], t, t
	f.deliver = t + c.lat[li] - 1
	f.drop = -1
	f.acct = 0
	f.gen = false
	f.stc = false
	// dropLate fires at t0+D+1; the message is still in flight then
	// only if its (free-flow) latency is at least D+2. A latency of
	// exactly D+1 is a deadline miss, not a drop.
	if c.cfg.DropLate && c.lat[li] >= st.Deadline+2 {
		f.drop = t + st.Deadline + 1
	}
	c.nextSeq[li]++
	c.nextRel[li], c.relIdx[li] = c.sched.advance(c.gidx[li], c.nextRel[li], c.relIdx[li])
	c.flights = append(c.flights, f)
}

// deliverFlight accounts a free-flow delivery: the kernel would have
// recorded one progress cycle for every cycle of the flight except the
// delivery cycle itself (deliver removes the message before the stall
// accounting runs), and the not-yet-booked flit crossings per link.
func (c *comp) deliverFlight(f *flight) {
	st := c.streams[f.li]
	ps := &c.res.PerStream[st.ID]
	ps.Delivered++
	lat := f.deliver - f.t0 + 1
	if f.t0 >= c.cfg.Warmup {
		observe(ps, lat, st.Deadline)
		ps.ProgressCycles += lat - 1 - f.acct
	}
	H, C := st.Path.Hops(), st.Length
	for i, l := range c.pathLinks[f.li] {
		if f.gen {
			l.flits += C - f.snap[i]
		} else {
			l.flits += C - stairCrossed(f.acct, i, C, c.depth, H)
		}
	}
}

// dropFlight accounts a deadline drop at cycle f.drop: crossings and
// progress up to the start of that cycle (dropLate removes the message
// before any flit moves or stall is accounted).
func (c *comp) dropFlight(f *flight) {
	c.creditFlight(f, f.drop)
	c.res.PerStream[c.streams[f.li].ID].Dropped++
}

// creditFlight books f's not-yet-accounted activity up to the start of
// cycle t: the per-link flit crossings beyond the prefix the kernel
// already booked, and — a free-flowing message advances some flit
// every single cycle — one progress cycle per cycle in flight.
func (c *comp) creditFlight(f *flight, t int) {
	st := c.streams[f.li]
	H, C := st.Path.Hops(), st.Length
	if f.gen {
		for i := 0; i < H; i++ {
			if n := c.crossedAt(f, i, t, C, H) - f.snap[i]; n > 0 {
				c.pathLinks[f.li][i].flits += n
			}
		}
	} else {
		a := t - f.t0
		for i := 0; i < H; i++ {
			if n := stairCrossed(a, i, C, c.depth, H) - stairCrossed(f.acct, i, C, c.depth, H); n > 0 {
				c.pathLinks[f.li][i].flits += n
			}
		}
	}
	if f.t0 >= c.cfg.Warmup {
		c.res.PerStream[st.ID].ProgressCycles += t - f.t0 - f.acct
	}
}

// headerAtCycle returns the link f's header occupies at the start of
// cycle t, capped at H-1 (the cap mirrors the last arrival event a
// message can see: entering its final link).
func (c *comp) headerAtCycle(f *flight, t int) int {
	st := c.streams[f.li]
	H, C := st.Path.Hops(), st.Length
	for j := 0; j < H; j++ {
		if c.crossedAt(f, j, t, C, H) == 0 {
			return j
		}
	}
	return H - 1
}

// flightOrder is the sort key reproducing the oracle's stamp-issuing
// order at materialisation. Kernel-era events (a generalized flight
// whose header has not advanced since conversion) keep their original
// kernel stamps and precede every analytic event, which happened at or
// after the last kernel exit; analytic events order by (cycle, phase,
// tiebreak) — release (phase 0, ties by the release loop's stream
// order) or header arrival (phase 2 = moveFlits, ties by the scan
// ordinal of the link just crossed, unique because two headers cannot
// cross the same link in the same cycle).
type flightOrder struct {
	kern  bool
	arr   int64
	cycle int
	phase int
	tie   int
}

func (c *comp) orderKey(f *flight, t int) flightOrder {
	st := c.streams[f.li]
	H, C := st.Path.Hops(), st.Length
	if f.gen {
		h := c.headerAtCycle(f, t)
		if h == f.h0 {
			return flightOrder{kern: true, arr: f.arr}
		}
		return flightOrder{cycle: c.flightT(f, 1, h-1, C, H), phase: 2, tie: int(c.pathOrds[f.li][h-1])}
	}
	a := t - f.t0
	i := H - 1
	if a < i {
		i = a
	}
	if i >= 1 {
		return flightOrder{cycle: f.t0 + i - 1, phase: 2, tie: int(c.pathOrds[f.li][i-1])}
	}
	return flightOrder{cycle: f.t0, phase: 0, tie: f.li}
}

func orderLess(a, b flightOrder) bool {
	if a.kern != b.kern {
		return a.kern
	}
	if a.kern {
		return a.arr < b.arr
	}
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	if a.phase != b.phase {
		return a.phase < b.phase
	}
	return a.tie < b.tie
}

// enterCycleMode materialises every flight into exact kernel state at
// the start of cycle t and switches the component to cycle stepping.
// The release that triggered the fallback has not been consumed; the
// kernel's own release phase will issue it this same cycle, after the
// (earlier-stream) flights released at t, which is the oracle's order.
func (c *comp) enterCycleMode(t int) {
	c.mode = modeCycle
	c.now = t
	c.nextTry = 0
	c.reentry = farCycle
	// Unpark frozen messages first: book the stall cycles the kernel
	// would have accumulated (the regime is constant while frozen, so
	// the stall kind observed at park time holds for every skipped
	// cycle), restore their VC ownership and pending registration, and
	// return them to the active list. Their original arrival stamps are
	// older than any stamp issued below, preserving arbitration order.
	for _, m := range c.parked {
		if n := t - m.parkFrom; n > 0 && m.genTime >= c.cfg.Warmup {
			ps := &c.res.PerStream[m.st.ID]
			if m.candPrev {
				ps.ArbStallCycles += n
			} else {
				ps.VCStallCycles += n
			}
		}
		for i, v := range m.vcHeld {
			if v >= 0 {
				m.links[i].vcs[v].owner = m
			}
		}
		if h := m.headerAt(); h < m.hops() && m.vcHeld[h] < 0 {
			c.addPending(m.links[h], m)
		}
		c.active = append(c.active, m)
	}
	c.parked = c.parked[:0]
	// Stamp issuing order, computed with scratch buffers and an
	// insertion sort: re-entries are frequent and flight counts tiny,
	// so per-entry allocation and sort.Slice overhead would dominate
	// the round trip.
	n := len(c.flights)
	if cap(c.ordKeys) < n {
		c.ordKeys = make([]flightOrder, n, 2*n)
		c.ordIdx = make([]int, n, 2*n)
		c.ordStamps = make([]int64, n, 2*n)
	}
	keys, idx, stamps := c.ordKeys[:n], c.ordIdx[:n], c.ordStamps[:n]
	for i, f := range c.flights {
		idx[i] = i
		keys[i] = c.orderKey(f, t)
	}
	for i := 1; i < n; i++ {
		v := idx[i]
		j := i
		for j > 0 && orderLess(keys[v], keys[idx[j-1]]) {
			idx[j] = idx[j-1]
			j--
		}
		idx[j] = v
	}
	for _, fi := range idx {
		c.stamp++
		stamps[fi] = c.stamp
	}
	// Materialise in flight (= release) order so the kernel's active
	// list comes out in the order the oracle maintains it.
	for fi, f := range c.flights {
		c.materialize(f, stamps[fi], t)
		c.fpool = append(c.fpool, f)
	}
	c.flights = c.flights[:0]
}

// materialize reconstructs the exact kernel state of one free-flowing
// message at the start of cycle t: flit counts, the held-VC range
// (under every arbiter a free-flowing header is granted the VC its
// scheme assigns: its own priority level for Preemptive/Li, VC 0 for
// the single-channel schemes), the pending header registration, and
// the already-earned statistics. A generalized flight materialised at
// its own conversion cycle restores the granted-but-uncrossed header
// VC instead of re-pending the header.
func (c *comp) materialize(f *flight, stamp int64, t int) {
	st := c.streams[f.li]
	m := c.newMessage(f.li, f.seq, f.t0)
	m.arrival = stamp
	H, C := st.Path.Hops(), st.Length
	if f.gen {
		for i := 0; i < H; i++ {
			m.crossed[i] = c.crossedAt(f, i, t, C, H)
		}
	} else {
		a := t - f.t0
		for i := 0; i < H; i++ {
			m.crossed[i] = stairCrossed(a, i, C, c.depth, H)
		}
	}
	vc := 0
	if c.schemeVC {
		vc = m.prio
	}
	lo := 0
	for lo < H && m.crossed[lo] >= C {
		lo++
	}
	m.lo = lo
	for i := lo; i < H; i++ {
		if m.crossed[i] > 0 && m.crossed[i] < C {
			m.vcHeld[i] = vc
			c.pathLinks[f.li][i].vcs[vc].owner = m
		}
	}
	h := lo
	for h < H && m.crossed[h] > 0 {
		h++
	}
	if h < H {
		if f.gen && f.hvc && t == f.tc {
			m.vcHeld[h] = vc
			c.pathLinks[f.li][h].vcs[vc].owner = m
		} else {
			c.addPending(m.links[h], m)
		}
	}
	c.active = append(c.active, m)
	c.creditFlight(f, t)
}

// freeState reports whether m's kernel state is free-flow-consistent:
// the shape jump mode can represent and project. Every partially
// crossed link must hold exactly the VC the arbitration scheme grants
// a free-flowing header (a Li-arbitrated message squeezed onto a lower
// VC under contention, for example, is not representable), and the
// header may at most hold that same VC on its current link. This is a
// state check, not a history check: a message in a representable state
// evolves identically from here on however it got there.
func (c *comp) freeState(m *cmsg) bool {
	vc := 0
	if c.schemeVC {
		vc = m.prio
	}
	C := m.st.Length
	h := -1
	for i := 0; i < len(m.crossed); i++ {
		cr := m.crossed[i]
		switch {
		case cr >= C:
			if m.vcHeld[i] != -1 {
				return false
			}
		case cr > 0:
			if m.vcHeld[i] != vc {
				return false
			}
		default:
			if h < 0 {
				h = i
			}
			if m.vcHeld[i] != -1 && (i != h || m.vcHeld[i] != vc) {
				return false
			}
		}
	}
	return true
}

// convert builds a generalized flight from a free-flow-consistent
// kernel message at the current cycle, projecting its delivery and
// per-link occupancy windows from the state snapshot.
func (c *comp) convert(m *cmsg) *flight {
	st := c.streams[m.li]
	H, C := st.Path.Hops(), st.Length
	f := c.newFlight()
	f.li, f.seq, f.t0, f.tc = m.li, m.seq, m.genTime, c.now
	f.acct = c.now - m.genTime
	f.arr = m.arrival
	f.gen = true
	f.snap = append(f.snap[:0], m.crossed...)
	f.win = f.win[:0]
	f.hvc = false
	f.h0 = H - 1
	// A message that never stalled sits exactly on the from-release
	// staircase; its projections collapse to the closed forms, saving
	// the O(hops) boundary maximisation per window bound.
	a := c.now - m.genTime
	f.stc = true
	for j := 0; j < H; j++ {
		if f.snap[j] != stairCrossed(a, j, C, c.depth, H) {
			f.stc = false
			break
		}
	}
	for j := 0; j < H; j++ {
		if f.snap[j] >= C {
			f.win = append(f.win, farCycle, -farCycle)
			continue
		}
		// The window must cover the whole VC-hold interval, not just
		// the crossing span: a message catching up behind its own
		// buffer back-pressure holds a VC on j before its first
		// remaining crossing there, and that hold blocks same-VC
		// assignment and strict-priority arbitration for others.
		first := c.flightT(f, f.snap[j]+1, j, C, H)
		if m.vcHeld[j] >= 0 {
			first = c.now
		}
		f.win = append(f.win, first, c.flightT(f, C, j, C, H))
	}
	for j := m.lo; j < H; j++ {
		if f.snap[j] == 0 {
			f.h0 = j
			f.hvc = m.vcHeld[j] >= 0
			break
		}
	}
	f.deliver = f.win[2*H-1]
	f.drop = -1
	if c.cfg.DropLate {
		if dc := f.t0 + st.Deadline + 1; f.deliver >= dc {
			f.drop = dc
		}
	}
	return f
}

// msgStair reports whether advancing active m sits exactly on the
// from-release staircase (it never stalled), which makes its window
// projections collapse to the closed forms.
func (c *comp) msgStair(m *cmsg) bool {
	a := c.now - m.genTime
	C := m.st.Length
	H := len(m.crossed)
	for j, cr := range m.crossed {
		if cr != stairCrossed(a, j, C, c.depth, H) {
			return false
		}
	}
	return true
}

// msgWin projects the occupancy window of advancing active m on its
// path link j directly from live kernel state — bound for bound what
// convert would store in the flight (including the VC-hold extension
// of the window start). Empty (first > last) once the tail cleared j.
func (c *comp) msgWin(m *cmsg, stair bool, j int) (int, int) {
	C := m.st.Length
	H := len(m.crossed)
	if m.crossed[j] >= C {
		return farCycle, -farCycle
	}
	if m.vcHeld[j] >= 0 {
		if stair {
			return c.now, stairTime(m.genTime, C, j, c.depth, H)
		}
		return c.now, c.stairT(m.crossed, c.now, C, j, H)
	}
	if stair {
		return stairTime(m.genTime, m.crossed[j]+1, j, c.depth, H),
			stairTime(m.genTime, C, j, c.depth, H)
	}
	return c.stairT(m.crossed, c.now, m.crossed[j]+1, j, H),
		c.stairT(m.crossed, c.now, C, j, H)
}

// tryRefresh attempts the transition back to analytic stepping. Each
// active is either advancing (it moved a flit last cycle) or statically
// blocked. Advancing messages must be free-flow-representable and
// convert to generalized flights; statically blocked messages may be
// parked — frozen verbatim, with a proven wake cycle before which no
// flit of theirs can move and no decision involving them can change.
// The component commits when the first cycle any interaction could
// occur (flight-flight window overlap, a flight or release touching a
// parked hold, or a parked wake) is far enough out to be worth the
// round trip; exact stepping resumes at that cycle via c.reentry.
// Attempted whenever a message retired and otherwise at the scheduled
// nextTry cycle. With a positive router latency the free-flow forms do
// not apply and the component stays in cycle mode for good.
func (c *comp) tryRefresh() {
	if !c.jumpable {
		return
	}
	nPark := 0
	for _, m := range c.active {
		if m.advPrev {
			if !c.freeState(m) {
				// Only a Li-arbitrated message squeezed onto a lower VC
				// reaches an unrepresentable state; it heals when that
				// worm clears the link, so back off rather than probe
				// per cycle.
				c.nextTry = c.now + 16
				return
			}
		} else if !c.parkShape(m) {
			c.nextTry = c.now + 2
			return
		} else {
			nPark++
		}
	}
	// Park wakes come first: they are computed from live message state,
	// so a too-close wake rejects the attempt before any flight is
	// built.
	wakeMin := farCycle
	if nPark > 0 {
		for _, m := range c.active {
			if m.advPrev {
				continue
			}
			var w int
			if m.candPrev {
				w = c.parkWakeArb(m)
			} else {
				w = c.parkWakeVC(m)
			}
			if c.cfg.DropLate {
				if dc := m.genTime + m.st.Deadline + 1; dc < w {
					w = dc
				}
			}
			if w <= c.now+reentryGap {
				nt := w
				if nt <= c.now {
					nt = c.now + 1
				}
				c.nextTry = nt
				return
			}
			if w < wakeMin {
				wakeMin = w
			}
		}
	}
	// The clash screen runs on live message state with the very same
	// window projections convert would store, so a rejected attempt
	// builds no flights at all; conversion happens only once the
	// commit is certain.
	if cap(c.stairBuf) < len(c.active) {
		c.stairBuf = make([]bool, len(c.active), 2*len(c.active))
	}
	stairs := c.stairBuf[:len(c.active)]
	for i, m := range c.active {
		if m.advPrev {
			stairs[i] = c.msgStair(m)
		}
	}
	ccMin, clearMax := farCycle, 0
	for x, a := range c.active {
		if !a.advPrev {
			continue
		}
		sa := stairs[x]
		for bx, b := range c.active[:x] {
			if !b.advPrev {
				continue
			}
			sb := stairs[bx]
			for _, p := range c.pairs[a.li][b.li] {
				as, ae := c.msgWin(a, sa, p.pa)
				if as > ae {
					continue
				}
				bs, be := c.msgWin(b, sb, p.pb)
				if bs <= ae && as <= be {
					start := as
					if bs > start {
						start = bs
					}
					if start < ccMin {
						ccMin = start
					}
					end := ae
					if be < end {
						end = be
					}
					if end+1 > clearMax {
						clearMax = end + 1
					}
				}
			}
		}
		if nPark > 0 && ccMin > c.now+reentryGap {
			fv := 0
			if c.schemeVC {
				fv = c.prio[a.li]
			}
			for _, pm := range c.active {
				if pm.advPrev {
					continue
				}
				for _, p := range c.pairs[a.li][pm.li] {
					if held := pm.vcHeld[p.pb]; held < 0 || fv > held {
						continue
					}
					if ws, we := c.msgWin(a, sa, p.pa); ws <= we && ws < ccMin {
						ccMin = ws
						if ws+1 > clearMax {
							clearMax = ws + 1
						}
					}
				}
			}
		}
		if ccMin <= c.now+reentryGap {
			break
		}
	}
	if ccMin <= c.now+reentryGap {
		// Interaction (re)starts immediately or within a few cycles:
		// converting back and forth costs more than staying exact.
		retry := clearMax
		if retry <= c.now {
			retry = c.now + 1
		}
		c.nextTry = retry
		return
	}
	for _, m := range c.active {
		if m.advPrev {
			c.flights = append(c.flights, c.convert(m))
		}
	}
	reentry := ccMin
	if wakeMin < reentry {
		reentry = wakeMin
	}
	c.nextTry = 0
	if reentry < farCycle {
		// Something happens further out — a window overlap, a parked
		// wake, a flight reaching a pinned hold: fly analytically until
		// that cycle, then resume exact stepping there.
		c.reentry = reentry
	}
	for _, l := range c.links {
		l.pending = l.pending[:0]
		l.queued = false
		for v := range l.vcs {
			l.vcs[v].owner = nil
		}
	}
	c.waiting = c.waiting[:0]
	for _, m := range c.active {
		if m.advPrev {
			c.free = append(c.free, m)
		} else {
			m.parkFrom = c.now
			c.parked = append(c.parked, m)
		}
	}
	c.active = c.active[:0]
	c.mode = modeJump
}

// parkShape reports whether a statically blocked message is in a
// regime the park model covers. A VC-waiter (no candidate last cycle)
// parks when its header is pending on a link: its own counters cannot
// change until a grant, which parkWakeVC bounds. An arbitration loser
// parks only under non-strict arbitration with buffer depth >= 2,
// where parkWakeArb's dense higher-VC coverage argument applies. With
// deadlock detection on, a frozen message's stale counter would need
// per-cycle tracking, so parking is disabled entirely.
func (c *comp) parkShape(m *cmsg) bool {
	if c.cfg.DeadlockThreshold > 0 {
		return false
	}
	if m.candPrev {
		return !c.strict && c.depth >= 2
	}
	h := m.headerAt()
	return h < m.hops() && m.vcHeld[h] < 0
}

// parkWakeVC bounds the park of a VC-waiter: the first cycle its
// pending header could be granted a virtual channel. Every VC its
// arbiter would consider is owned (else the grant is due next cycle);
// an owner that is itself parked holds past any wake, and an advancing
// owner releases the VC during its last crossing of the link — or, at
// the latest, at its deadline-drop cycle — making the grant possible
// one cycle later. Until that minimum, the waiter's pending entry wins
// any arrival-ordered tie but receives nothing, so its state is
// constant.
func (c *comp) parkWakeVC(m *cmsg) int {
	h := m.headerAt()
	l := m.links[h]
	lo, hi := 0, 0
	switch c.cfg.Arbiter {
	case sim.Preemptive:
		lo, hi = m.prio, m.prio
	case sim.Li:
		lo, hi = 0, m.prio
	}
	wake := farCycle
	for v := lo; v <= hi; v++ {
		o := l.vcs[v].owner
		if o == nil {
			return c.now + 1
		}
		if !o.advPrev {
			continue // a parked owner holds past any wake
		}
		Ho, Co := o.hops(), o.st.Length
		w := farCycle
		for _, p := range c.pairs[m.li][o.li] {
			if p.pa != h {
				continue
			}
			if we := c.stairT(o.crossed, c.now, Co, p.pb, Ho); we+1 < w {
				w = we + 1
			}
		}
		if c.cfg.DropLate {
			if dc := o.genTime + o.st.Deadline + 1; dc < w {
				w = dc
			}
		}
		if w < wake {
			wake = w
		}
	}
	return wake
}

// parkWakeArb bounds the park of an arbitration loser: the first cycle
// it could win a candidate link. Its candidate set depends only on its
// own frozen counters, so it is constant; on each candidate link the
// message keeps losing exactly while some strictly-higher-VC flight
// crosses that link every cycle (dense coverage — buffer depth >= 2
// makes every flight's crossing window one-per-cycle). The wake is the
// first cycle any candidate link's coverage chain runs dry. Lower- or
// equal-VC traffic reaching a candidate link earlier forces re-entry
// through the VC rule (in conflicts and the refresh screen) or the
// flight-flight overlap with the coverer.
func (c *comp) parkWakeArb(m *cmsg) int {
	C := m.st.Length
	wake := farCycle
	cand := false
	for i := m.lo; i < len(m.crossed); i++ {
		if m.vcHeld[i] < 0 {
			break
		}
		if m.crossed[i] >= C {
			continue
		}
		if i > 0 && m.crossed[i-1] <= m.crossed[i] {
			continue
		}
		if i+1 < len(m.crossed) && m.crossed[i]-m.crossed[i+1] >= c.depth {
			continue
		}
		cand = true
		if w := c.coverEnd(m, i) + 1; w < wake {
			wake = w
		}
	}
	if !cand {
		return c.now
	}
	return wake
}

// coverEnd returns the last cycle of the contiguous interval, starting
// at the current cycle, during which candidate link i of parked
// message m is crossed every cycle by some advancing message holding a
// strictly higher VC. Returns now-1 if no coverage starts immediately.
// Coverage uses the coverer's true projected crossing cycles (not the
// VC-hold extension: a message holding a VC while catching up is not a
// candidate and beats nobody), capped at its deadline-drop cycle.
// A coverer's crossings need not be dense: a generalized snapshot can
// carry a buffer bubble that propagates upstream and skips a cycle on
// the link, and on that cycle the parked message wins — so only
// contiguous runs of per-flit crossing cycles extend the cover.
func (c *comp) coverEnd(m *cmsg, i int) int {
	vc := m.vcHeld[i]
	end := c.now - 1
	for changed := true; changed; {
		changed = false
		for _, o := range c.active {
			if !o.advPrev || (c.schemeVC && c.prio[o.li] <= vc) || (!c.schemeVC && vc >= 0) {
				continue
			}
			Ho, Co := o.hops(), o.st.Length
			for _, p := range c.pairs[m.li][o.li] {
				if p.pa != i || o.crossed[p.pb] >= Co {
					continue
				}
				cs := c.stairT(o.crossed, c.now, o.crossed[p.pb]+1, p.pb, Ho)
				ce := c.stairT(o.crossed, c.now, Co, p.pb, Ho)
				dc := farCycle
				if c.cfg.DropLate {
					dc = o.genTime + o.st.Deadline + 1
				}
				if ce-cs == Co-o.crossed[p.pb]-1 {
					// One crossing per cycle: the span is a single run.
					if dc-1 < ce {
						ce = dc - 1
					}
					if cs <= end+1 && ce > end {
						end = ce
						changed = true
					}
					continue
				}
				run, prev := cs, cs-2
				for k := o.crossed[p.pb] + 1; k <= Co; k++ {
					tk := c.stairT(o.crossed, c.now, k, p.pb, Ho)
					if tk >= dc {
						break
					}
					if tk != prev+1 {
						if run <= end+1 && prev > end {
							end = prev
							changed = true
						}
						run = tk
					}
					prev = tk
				}
				if run <= end+1 && prev > end {
					end = prev
					changed = true
				}
			}
		}
	}
	return end
}
