// Package trace records and renders simulator events: message
// releases, virtual-channel acquisitions and releases, and deliveries.
// A Recorder turns the event stream into per-message channel-occupancy
// intervals, from which it renders Gantt-style timelines and computes
// hold-time statistics — the visibility needed to see wormhole blocking
// (and the paper's flit-level preemption) actually happen.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/stream"
	"repro/internal/topology"
)

// Kind labels a trace event.
type Kind int

const (
	// Release: a new message instance was generated at its source.
	Release Kind = iota
	// VCAcquire: the message's header acquired a virtual channel.
	VCAcquire
	// VCRelease: the message's tail passed and released the channel.
	VCRelease
	// Deliver: the tail flit reached the destination.
	Deliver
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Release:
		return "release"
	case VCAcquire:
		return "vc-acquire"
	case VCRelease:
		return "vc-release"
	case Deliver:
		return "deliver"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one simulator event.
type Event struct {
	Cycle  int
	Kind   Kind
	Stream stream.ID
	Seq    int              // message instance within the stream
	Link   topology.Channel // meaningful for VCAcquire/VCRelease
	VC     int              // meaningful for VCAcquire/VCRelease
}

// String renders the event compactly.
func (e Event) String() string {
	switch e.Kind {
	case VCAcquire, VCRelease:
		return fmt.Sprintf("t=%-6d %-10s M%d#%d %s vc%d", e.Cycle, e.Kind, e.Stream, e.Seq, e.Link, e.VC)
	default:
		return fmt.Sprintf("t=%-6d %-10s M%d#%d", e.Cycle, e.Kind, e.Stream, e.Seq)
	}
}

// Tracer receives simulator events. Implementations must be cheap; the
// simulator calls Event synchronously.
type Tracer interface {
	Event(e Event)
}

// TextSink is a Tracer that writes each event as one line to an
// io.Writer — a live event log for long simulations where keeping every
// event in memory is undesirable. Write errors stop further output.
type TextSink struct {
	W    io.Writer
	fail bool
}

// Event implements Tracer.
func (s *TextSink) Event(e Event) {
	if s.fail || s.W == nil {
		return
	}
	if _, err := fmt.Fprintln(s.W, e.String()); err != nil {
		s.fail = true
	}
}

// Tee fans one event stream out to several tracers.
type Tee []Tracer

// Event implements Tracer.
func (t Tee) Event(e Event) {
	for _, tr := range t {
		if tr != nil {
			tr.Event(e)
		}
	}
}

// Recorder is a Tracer that stores events (optionally capped) and
// derives per-message occupancy intervals.
type Recorder struct {
	Events []Event
	Limit  int // maximum events kept; 0 = unlimited
	drops  int
}

// Event implements Tracer.
func (r *Recorder) Event(e Event) {
	if r.Limit > 0 && len(r.Events) >= r.Limit {
		r.drops++
		return
	}
	r.Events = append(r.Events, e)
}

// Dropped returns how many events exceeded the limit.
func (r *Recorder) Dropped() int { return r.drops }

// MsgKey identifies one message instance.
type MsgKey struct {
	Stream stream.ID
	Seq    int
}

// Interval is one channel-holding interval of a message.
type Interval struct {
	Link       topology.Channel
	VC         int
	From, To   int // [From, To) in cycles; To == -1 while still held
	holdsTotal int
}

// Timeline is the reconstructed life of one message instance.
type Timeline struct {
	Key       MsgKey
	Released  int
	Delivered int // -1 if not delivered within the trace
	Intervals []Interval
}

// Latency returns the delivery latency, or -1 when undelivered.
func (tl Timeline) Latency() int {
	if tl.Delivered < 0 {
		return -1
	}
	return tl.Delivered - tl.Released
}

// Timelines reconstructs every message's timeline from the recorded
// events, sorted by release cycle then stream/seq.
func (r *Recorder) Timelines() []Timeline {
	byKey := map[MsgKey]*Timeline{}
	open := map[MsgKey]map[topology.Channel]int{} // index of open interval
	var order []MsgKey
	for _, e := range r.Events {
		k := MsgKey{Stream: e.Stream, Seq: e.Seq}
		tl, ok := byKey[k]
		if !ok {
			tl = &Timeline{Key: k, Released: e.Cycle, Delivered: -1}
			byKey[k] = tl
			open[k] = map[topology.Channel]int{}
			order = append(order, k)
		}
		switch e.Kind {
		case Release:
			tl.Released = e.Cycle
		case VCAcquire:
			open[k][e.Link] = len(tl.Intervals)
			tl.Intervals = append(tl.Intervals, Interval{Link: e.Link, VC: e.VC, From: e.Cycle, To: -1})
		case VCRelease:
			if idx, held := open[k][e.Link]; held {
				tl.Intervals[idx].To = e.Cycle
				delete(open[k], e.Link)
			}
		case Deliver:
			tl.Delivered = e.Cycle
		}
	}
	out := make([]Timeline, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Released != out[j].Released {
			return out[i].Released < out[j].Released
		}
		if out[i].Key.Stream != out[j].Key.Stream {
			return out[i].Key.Stream < out[j].Key.Stream
		}
		return out[i].Key.Seq < out[j].Key.Seq
	})
	return out
}

// HoldStats summarises channel-holding behaviour per stream: total and
// maximum cycles a single channel was held. Long holds on a blocked
// worm are exactly the hazard of Figure 2.
type HoldStats struct {
	Stream    stream.ID
	Holds     int
	Total     int
	Max       int
	Undrained int // intervals still open at the end of the trace
}

// HoldStatsByStream aggregates interval lengths per stream; endCycle
// closes still-open intervals.
func (r *Recorder) HoldStatsByStream(endCycle int) map[stream.ID]HoldStats {
	out := map[stream.ID]HoldStats{}
	for _, tl := range r.Timelines() {
		hs := out[tl.Key.Stream]
		hs.Stream = tl.Key.Stream
		for _, iv := range tl.Intervals {
			to := iv.To
			if to < 0 {
				to = endCycle
				hs.Undrained++
			}
			d := to - iv.From
			hs.Holds++
			hs.Total += d
			if d > hs.Max {
				hs.Max = d
			}
		}
		out[tl.Key.Stream] = hs
	}
	return out
}

// Gantt renders the timeline of one message as ASCII art: one line per
// channel it held, '#' while held. Cycles are clipped to [from, to).
func (tl Timeline) Gantt(from, to int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "M%d#%d released t=%d", tl.Key.Stream, tl.Key.Seq, tl.Released)
	if tl.Delivered >= 0 {
		fmt.Fprintf(&b, ", delivered t=%d (latency %d)", tl.Delivered, tl.Latency())
	} else {
		b.WriteString(", undelivered")
	}
	b.WriteByte('\n')
	width := to - from
	if width <= 0 {
		return b.String()
	}
	for _, iv := range tl.Intervals {
		fmt.Fprintf(&b, "  %-10s vc%d |", iv.Link.String(), iv.VC)
		end := iv.To
		if end < 0 {
			end = to
		}
		for c := from; c < to; c++ {
			if c >= iv.From && c < end {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}
