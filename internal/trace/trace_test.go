package trace

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

func sampleEvents() []Event {
	ch1 := topology.Channel{From: 0, To: 1}
	ch2 := topology.Channel{From: 1, To: 2}
	return []Event{
		{Cycle: 0, Kind: Release, Stream: 0, Seq: 0},
		{Cycle: 0, Kind: VCAcquire, Stream: 0, Seq: 0, Link: ch1, VC: 1},
		{Cycle: 1, Kind: VCAcquire, Stream: 0, Seq: 0, Link: ch2, VC: 1},
		{Cycle: 3, Kind: VCRelease, Stream: 0, Seq: 0, Link: ch1, VC: 1},
		{Cycle: 4, Kind: VCRelease, Stream: 0, Seq: 0, Link: ch2, VC: 1},
		{Cycle: 4, Kind: Deliver, Stream: 0, Seq: 0},
		{Cycle: 5, Kind: Release, Stream: 1, Seq: 0},
		{Cycle: 5, Kind: VCAcquire, Stream: 1, Seq: 0, Link: ch1, VC: 0},
	}
}

func TestRecorderTimelines(t *testing.T) {
	r := &Recorder{}
	for _, e := range sampleEvents() {
		r.Event(e)
	}
	tls := r.Timelines()
	if len(tls) != 2 {
		t.Fatalf("%d timelines, want 2", len(tls))
	}
	m0 := tls[0]
	if m0.Key != (MsgKey{Stream: 0, Seq: 0}) {
		t.Fatalf("first timeline key %+v", m0.Key)
	}
	if m0.Released != 0 || m0.Delivered != 4 || m0.Latency() != 4 {
		t.Fatalf("m0 timing: %+v", m0)
	}
	if len(m0.Intervals) != 2 {
		t.Fatalf("m0 intervals: %+v", m0.Intervals)
	}
	if m0.Intervals[0].From != 0 || m0.Intervals[0].To != 3 {
		t.Fatalf("interval 0: %+v", m0.Intervals[0])
	}
	// The second message is still holding its channel.
	m1 := tls[1]
	if m1.Delivered != -1 || m1.Latency() != -1 {
		t.Fatalf("m1 should be undelivered: %+v", m1)
	}
	if m1.Intervals[0].To != -1 {
		t.Fatalf("m1 interval should be open: %+v", m1.Intervals[0])
	}
}

func TestHoldStats(t *testing.T) {
	r := &Recorder{}
	for _, e := range sampleEvents() {
		r.Event(e)
	}
	hs := r.HoldStatsByStream(10)
	s0 := hs[0]
	if s0.Holds != 2 || s0.Total != 3+3 || s0.Max != 3 || s0.Undrained != 0 {
		t.Fatalf("stream 0 hold stats: %+v", s0)
	}
	s1 := hs[1]
	if s1.Holds != 1 || s1.Total != 5 || s1.Undrained != 1 {
		t.Fatalf("stream 1 hold stats: %+v", s1)
	}
}

func TestRecorderLimit(t *testing.T) {
	r := &Recorder{Limit: 3}
	for _, e := range sampleEvents() {
		r.Event(e)
	}
	if len(r.Events) != 3 {
		t.Fatalf("kept %d events", len(r.Events))
	}
	if r.Dropped() != len(sampleEvents())-3 {
		t.Fatalf("dropped %d", r.Dropped())
	}
}

func TestGanttRendering(t *testing.T) {
	r := &Recorder{}
	for _, e := range sampleEvents() {
		r.Event(e)
	}
	tl := r.Timelines()[0]
	out := tl.Gantt(0, 6)
	if !strings.Contains(out, "latency 4") {
		t.Fatalf("missing latency: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 interval lines:\n%s", out)
	}
	// ch1 held cycles 0-2: "###..." within |...|
	if !strings.Contains(lines[1], "|###...|") {
		t.Fatalf("ch1 bar wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "|.###..|") {
		t.Fatalf("ch2 bar wrong: %q", lines[2])
	}
	// Degenerate window.
	if out := tl.Gantt(5, 5); strings.Count(out, "\n") != 1 {
		t.Fatalf("degenerate window should render header only: %q", out)
	}
}

func TestEventAndKindStrings(t *testing.T) {
	es := sampleEvents()
	if !strings.Contains(es[1].String(), "vc-acquire") || !strings.Contains(es[1].String(), "0->1") {
		t.Fatalf("event string: %q", es[1].String())
	}
	if !strings.Contains(es[0].String(), "release") {
		t.Fatalf("event string: %q", es[0].String())
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestTextSink(t *testing.T) {
	var buf strings.Builder
	s := &TextSink{W: &buf}
	for _, e := range sampleEvents() {
		s.Event(e)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(sampleEvents()) {
		t.Fatalf("lines: %d", len(lines))
	}
	if !strings.Contains(lines[1], "vc-acquire") {
		t.Fatalf("line: %q", lines[1])
	}
	// Nil writer and write failure are safe.
	(&TextSink{}).Event(sampleEvents()[0])
	fw := &TextSink{W: failWriter{}}
	fw.Event(sampleEvents()[0])
	fw.Event(sampleEvents()[1]) // no panic after failure
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errFail }

var errFail = &failError{}

type failError struct{}

func (*failError) Error() string { return "fail" }

func TestTee(t *testing.T) {
	a, b := &Recorder{}, &Recorder{}
	tee := Tee{a, nil, b}
	for _, e := range sampleEvents() {
		tee.Event(e)
	}
	if len(a.Events) != len(sampleEvents()) || len(b.Events) != len(sampleEvents()) {
		t.Fatalf("tee fanout wrong: %d/%d", len(a.Events), len(b.Events))
	}
}
