// Package server exposes an admit.Controller as a JSON HTTP service —
// the online face of the paper's host processor. It is stdlib-only:
// a net/http ServeMux with method-qualified routes, JSON bodies, a
// Prometheus-style text /metrics endpoint backed by internal/hist, and
// optional snapshot persistence with atomic rename so a restarted
// daemon resumes exactly where it stopped.
//
// Routes (see docs/DAEMON.md for the full reference):
//
//	POST   /v1/streams           admit one stream
//	DELETE /v1/streams/{handle}  withdraw one stream
//	POST   /v1/jobs              admit a batch atomically
//	GET    /v1/streams           list admitted streams
//	GET    /v1/report            feasibility report over the live set
//	GET    /healthz              liveness probe
//	GET    /metrics              counters + recompute-latency histograms
//
// Failure semantics: infeasible admissions are 409 with the structured
// rejection, malformed requests are 400, unknown handles are 404. A
// mutation commits in memory before its snapshot is written; if the
// snapshot write fails the response is 500 with "committed": true and
// the daemon keeps serving from memory (the operator loses restart
// durability, not traffic).
//
// Overload protection: mutations serialize behind the controller's
// write lock, so under sustained overload they would otherwise queue
// without bound and convert into client timeouts. With
// MaxQueuedMutations set, at most that many mutation requests are in
// the building at once (executing plus waiting); the rest wait up to
// QueueWait for a slot and are then shed with 429 Too Many Requests
// and a parseable Retry-After header. A shed request has touched no
// state. Once a mutation holds a slot it always runs to completion —
// the commit-before-respond guarantee is never cut short by a
// deadline. See docs/DAEMON.md for the overload semantics.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"repro/internal/admit"
	"repro/internal/hist"
	"repro/internal/topology"
)

// Config assembles a Server.
type Config struct {
	Controller *admit.Controller
	// SnapshotPath persists the controller state after every mutation;
	// empty disables persistence.
	SnapshotPath string
	// MutationDelay artificially lengthens every mutation while it
	// holds no lock. It exists for the end-to-end shutdown-drain test
	// (internal/e2e), which needs a request reliably in flight; leave
	// zero in production.
	MutationDelay time.Duration
	// MaxQueuedMutations bounds the mutation requests admitted into the
	// serialized controller queue, the executing one included; 0
	// disables backpressure (unbounded queueing, the pre-overload
	// behaviour).
	MaxQueuedMutations int
	// QueueWait is the per-request deadline for obtaining a queue slot:
	// a mutation that cannot start within it is shed with 429. Zero
	// sheds immediately when the queue is full.
	QueueWait time.Duration
	// RetryAfter is the hint sent in the Retry-After header of a 429,
	// rounded up to whole seconds (minimum 1, per RFC 9110
	// delay-seconds). Zero defaults to one second.
	RetryAfter time.Duration
	// WriteTimeout and IdleTimeout are applied to the http.Server (zero
	// leaves the corresponding limit off). ReadHeaderTimeout is always
	// set.
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
}

// Server is the HTTP face of one admission controller.
type Server struct {
	ctl          *admit.Controller
	snapshotPath string
	delay        time.Duration
	httpSrv      *http.Server
	inflight     atomic.Int64

	// mutSem is the bounded mutation queue: holding a token is the
	// right to run one mutation. nil when backpressure is disabled.
	mutSem     chan struct{}
	queueWait  time.Duration
	retryAfter time.Duration
	overload   atomic.Int64 // mutations shed with 429

	mu           sync.Mutex
	admitLat     hist.H // admit mutation latency, µs (recompute included)
	withdrawLat  hist.H // withdraw mutation latency, µs
	snapshotErrs int64
}

// New wires the routes and returns a server ready to Serve.
func New(cfg Config) (*Server, error) {
	if cfg.Controller == nil {
		return nil, fmt.Errorf("server: nil controller")
	}
	if cfg.MaxQueuedMutations < 0 {
		return nil, fmt.Errorf("server: negative mutation queue bound %d", cfg.MaxQueuedMutations)
	}
	s := &Server{
		ctl:          cfg.Controller,
		snapshotPath: cfg.SnapshotPath,
		delay:        cfg.MutationDelay,
		queueWait:    cfg.QueueWait,
		retryAfter:   cfg.RetryAfter,
	}
	if s.retryAfter <= 0 {
		s.retryAfter = time.Second
	}
	if cfg.MaxQueuedMutations > 0 {
		s.mutSem = make(chan struct{}, cfg.MaxQueuedMutations)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/streams", s.handleAdmitStream)
	mux.HandleFunc("DELETE /v1/streams/{handle}", s.handleWithdraw)
	mux.HandleFunc("GET /v1/streams", s.handleListStreams)
	mux.HandleFunc("POST /v1/jobs", s.handleAdmitJob)
	mux.HandleFunc("GET /v1/report", s.handleReport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.httpSrv = &http.Server{
		Handler:           s.track(mux),
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      cfg.WriteTimeout,
		IdleTimeout:       cfg.IdleTimeout,
	}
	return s, nil
}

// track counts in-flight requests so tests (and /metrics) can observe
// the drain behaviour of graceful shutdown.
func (s *Server) track(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		next.ServeHTTP(w, r)
	})
}

// InFlight returns the number of requests currently being served.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a graceful shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error { return s.httpSrv.Serve(l) }

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	s.httpSrv.Addr = addr
	return s.httpSrv.ListenAndServe()
}

// Shutdown gracefully stops the server: no new connections, in-flight
// requests drain until ctx expires.
func (s *Server) Shutdown(ctx context.Context) error { return s.httpSrv.Shutdown(ctx) }

// Close stops the server abruptly: the listener and every active
// connection are torn down without draining. It exists for chaos
// testing (internal/loadgen kills a daemon mid-run to exercise
// snapshot restore); production shutdown should use Shutdown.
func (s *Server) Close() error { return s.httpSrv.Close() }

// acquireMutation takes a slot in the bounded mutation queue. It
// returns a release func and true, or (nil, false) when the request
// should be shed: the queue stayed full past the QueueWait deadline,
// or the client went away while waiting. With backpressure disabled it
// always succeeds immediately.
func (s *Server) acquireMutation(ctx context.Context) (func(), bool) {
	if s.mutSem == nil {
		return func() {}, true
	}
	release := func() { <-s.mutSem }
	select {
	case s.mutSem <- struct{}{}:
		return release, true
	default:
	}
	if s.queueWait <= 0 {
		return nil, false
	}
	t := time.NewTimer(s.queueWait)
	defer t.Stop()
	select {
	case s.mutSem <- struct{}{}:
		return release, true
	case <-t.C:
		return nil, false
	case <-ctx.Done():
		return nil, false
	}
}

// shed answers a mutation the queue could not absorb: 429 with a
// Retry-After hint in whole seconds, body in the usual error shape.
// Nothing was committed.
func (s *Server) shed(w http.ResponseWriter) {
	s.overload.Add(1)
	secs := int((s.retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
		Error: "overloaded: mutation queue full; retry after the indicated delay",
	})
}

// StreamRequest is the JSON body of POST /v1/streams and each element
// of a job batch.
type StreamRequest struct {
	Src      int `json:"src"`
	Dst      int `json:"dst"`
	Priority int `json:"priority"`
	Period   int `json:"period"`
	Length   int `json:"length"`
	Deadline int `json:"deadline,omitempty"` // defaults to period
}

func (r StreamRequest) spec() admit.Spec {
	return admit.Spec{
		Src: topology.NodeID(r.Src), Dst: topology.NodeID(r.Dst),
		Priority: r.Priority, Period: r.Period,
		Length: r.Length, Deadline: r.Deadline,
	}
}

// JobRequest is the JSON body of POST /v1/jobs: a jobadm-style batch
// admitted atomically.
type JobRequest struct {
	Name    string          `json:"name,omitempty"`
	Streams []StreamRequest `json:"streams"`
}

// AdmitResponse is the success body of the two admission routes.
type AdmitResponse struct {
	Handles    []admit.Handle `json:"handles"`
	Recomputed int            `json:"recomputed"`
	Feasible   bool           `json:"feasible"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error     string           `json:"error"`
	Rejection *admit.Rejection `json:"rejection,omitempty"`
	Committed bool             `json:"committed,omitempty"`
}

// VerdictResponse is one row of GET /v1/report.
type VerdictResponse struct {
	ID       int          `json:"id"`
	Handle   admit.Handle `json:"handle"`
	U        int          `json:"u"`
	Deadline int          `json:"deadline"`
	Feasible bool         `json:"feasible"`
}

// ReportResponse is the body of GET /v1/report.
type ReportResponse struct {
	Feasible bool              `json:"feasible"`
	Streams  int               `json:"streams"`
	Verdicts []VerdictResponse `json:"verdicts"`
}

// StreamInfo is one row of GET /v1/streams.
type StreamInfo struct {
	Handle   admit.Handle `json:"handle"`
	ID       int          `json:"id"`
	Src      int          `json:"src"`
	Dst      int          `json:"dst"`
	Priority int          `json:"priority"`
	Period   int          `json:"period"`
	Length   int          `json:"length"`
	Deadline int          `json:"deadline"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection owns delivery; nothing to do on failure
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("decode: %v", err)})
		return false
	}
	return true
}

func (s *Server) handleAdmitStream(w http.ResponseWriter, r *http.Request) {
	var req StreamRequest
	if !decodeBody(w, r, &req) {
		return
	}
	release, ok := s.acquireMutation(r.Context())
	if !ok {
		s.shed(w)
		return
	}
	defer release()
	s.admit(w, []admit.Spec{req.spec()})
}

func (s *Server) handleAdmitJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Streams) == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "job has no streams"})
		return
	}
	specs := make([]admit.Spec, len(req.Streams))
	for i, sr := range req.Streams {
		specs[i] = sr.spec()
	}
	release, ok := s.acquireMutation(r.Context())
	if !ok {
		s.shed(w)
		return
	}
	defer release()
	s.admit(w, specs)
}

// admit runs one admission mutation end to end: the controller call,
// the latency observation, the snapshot write, and the response.
func (s *Server) admit(w http.ResponseWriter, specs []admit.Spec) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	t0 := time.Now()
	res, err := s.ctl.AdmitBatch(specs)
	elapsed := time.Since(t0)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	s.mu.Lock()
	s.admitLat.Observe(int(elapsed.Microseconds()))
	s.mu.Unlock()
	if !res.Admitted {
		writeJSON(w, http.StatusConflict, ErrorResponse{
			Error:     "infeasible: " + res.Rejection.String(),
			Rejection: res.Rejection,
		})
		return
	}
	if err := s.persist(); err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{
			Error: fmt.Sprintf("snapshot: %v", err), Committed: true,
		})
		return
	}
	writeJSON(w, http.StatusOK, AdmitResponse{
		Handles:    res.Handles,
		Recomputed: res.Recomputed,
		Feasible:   res.Report.Feasible,
	})
}

func (s *Server) handleWithdraw(w http.ResponseWriter, r *http.Request) {
	var handle int64
	if _, err := fmt.Sscanf(r.PathValue("handle"), "%d", &handle); err != nil || handle <= 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "malformed handle"})
		return
	}
	release, ok := s.acquireMutation(r.Context())
	if !ok {
		s.shed(w)
		return
	}
	defer release()
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	t0 := time.Now()
	recomputed, err := s.ctl.Withdraw(admit.Handle(handle))
	elapsed := time.Since(t0)
	if err != nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: err.Error()})
		return
	}
	s.mu.Lock()
	s.withdrawLat.Observe(int(elapsed.Microseconds()))
	s.mu.Unlock()
	if err := s.persist(); err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{
			Error: fmt.Sprintf("snapshot: %v", err), Committed: true,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"recomputed": recomputed})
}

func (s *Server) handleListStreams(w http.ResponseWriter, _ *http.Request) {
	admitted := s.ctl.Streams()
	out := make([]StreamInfo, len(admitted))
	for i, a := range admitted {
		out[i] = StreamInfo{
			Handle: a.Handle, ID: int(a.ID),
			Src: int(a.Spec.Src), Dst: int(a.Spec.Dst),
			Priority: a.Spec.Priority, Period: a.Spec.Period,
			Length: a.Spec.Length, Deadline: a.Spec.Deadline,
		}
	}
	writeJSON(w, http.StatusOK, map[string][]StreamInfo{"streams": out})
}

func (s *Server) handleReport(w http.ResponseWriter, _ *http.Request) {
	// Streams and Report are two reads of one controller; admissions
	// between them could skew the join, so take them in one breath via
	// Streams (which carries the handle mapping) and the cached report.
	admitted := s.ctl.Streams()
	rep := s.ctl.Report()
	if len(rep.Verdicts) != len(admitted) {
		// A mutation slid between the two reads; retry once with the
		// report first — two racing reads cannot both lose.
		rep = s.ctl.Report()
		admitted = s.ctl.Streams()
		if len(rep.Verdicts) > len(admitted) {
			rep.Verdicts = rep.Verdicts[:len(admitted)]
		}
	}
	out := ReportResponse{Feasible: rep.Feasible, Streams: len(rep.Verdicts)}
	out.Verdicts = make([]VerdictResponse, len(rep.Verdicts))
	for i, v := range rep.Verdicts {
		out.Verdicts[i] = VerdictResponse{
			ID: int(v.ID), U: v.U, Deadline: v.Deadline, Feasible: v.Feasible,
		}
		if i < len(admitted) {
			out.Verdicts[i].Handle = admitted[i].Handle
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the counters and latency histograms in the
// Prometheus text exposition format, deterministically ordered.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.ctl.Stats()
	s.mu.Lock()
	admitLat, withdrawLat := s.admitLat, s.withdrawLat
	snapErrs := s.snapshotErrs
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP rtwormd_streams Streams currently admitted.\n")
	fmt.Fprintf(w, "# TYPE rtwormd_streams gauge\n")
	fmt.Fprintf(w, "rtwormd_streams %d\n", s.ctl.Len())
	fmt.Fprintf(w, "# TYPE rtwormd_inflight_requests gauge\n")
	fmt.Fprintf(w, "rtwormd_inflight_requests %d\n", s.InFlight())
	fmt.Fprintf(w, "# TYPE rtwormd_admitted_total counter\n")
	fmt.Fprintf(w, "rtwormd_admitted_total %d\n", st.Admitted)
	fmt.Fprintf(w, "# TYPE rtwormd_rejected_total counter\n")
	fmt.Fprintf(w, "rtwormd_rejected_total %d\n", st.Rejected)
	fmt.Fprintf(w, "# TYPE rtwormd_withdrawn_total counter\n")
	fmt.Fprintf(w, "rtwormd_withdrawn_total %d\n", st.Withdrawn)
	fmt.Fprintf(w, "# HELP rtwormd_recomputed_bounds_total Delay bounds recomputed across mutations.\n")
	fmt.Fprintf(w, "# TYPE rtwormd_recomputed_bounds_total counter\n")
	fmt.Fprintf(w, "rtwormd_recomputed_bounds_total %d\n", st.Recomputed)
	fmt.Fprintf(w, "# HELP rtwormd_cached_bounds_total Delay bounds served from cache across mutations.\n")
	fmt.Fprintf(w, "# TYPE rtwormd_cached_bounds_total counter\n")
	fmt.Fprintf(w, "rtwormd_cached_bounds_total %d\n", st.Cached)
	fmt.Fprintf(w, "# TYPE rtwormd_snapshot_errors_total counter\n")
	fmt.Fprintf(w, "rtwormd_snapshot_errors_total %d\n", snapErrs)
	fmt.Fprintf(w, "# HELP rtwormd_overload_shed_total Mutations shed with 429 because the queue was full.\n")
	fmt.Fprintf(w, "# TYPE rtwormd_overload_shed_total counter\n")
	fmt.Fprintf(w, "rtwormd_overload_shed_total %d\n", s.overload.Load())
	fmt.Fprintf(w, "# HELP rtwormd_mutation_queue_depth Mutations holding or waiting for a queue slot.\n")
	fmt.Fprintf(w, "# TYPE rtwormd_mutation_queue_depth gauge\n")
	fmt.Fprintf(w, "rtwormd_mutation_queue_depth %d\n", len(s.mutSem))
	writeHist(w, "rtwormd_admit_latency_us", "Admit mutation latency (recompute included), microseconds.", &admitLat)
	writeHist(w, "rtwormd_withdraw_latency_us", "Withdraw mutation latency, microseconds.", &withdrawLat)
}

// writeHist renders one hist.H as a Prometheus summary.
func writeHist(w io.Writer, name, help string, h *hist.H) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s summary\n", name)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := h.Quantile(q)
		if v < 0 {
			v = 0
		}
		fmt.Fprintf(w, "%s{quantile=\"%g\"} %d\n", name, q, v)
	}
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	mean := h.Mean()
	if h.Count() == 0 {
		mean = 0
	}
	fmt.Fprintf(w, "%s_sum %d\n", name, int64(mean*float64(h.Count())))
}

// persist writes the controller snapshot to the configured path with
// an atomic rename; a no-op without a path.
func (s *Server) persist() error {
	if s.snapshotPath == "" {
		return nil
	}
	err := SaveSnapshot(s.ctl, s.snapshotPath)
	if err != nil {
		s.mu.Lock()
		s.snapshotErrs++
		s.mu.Unlock()
	}
	return err
}

// SaveSnapshot writes the controller state to path atomically: the
// JSON document lands in a temp file in the same directory and is
// renamed over the target, so a crash mid-write can never leave a
// truncated snapshot.
func SaveSnapshot(c *admit.Controller, path string) error {
	sn, err := c.Snapshot()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(sn, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".rtwormd-snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadSnapshot reads a snapshot file and rebuilds its controller. The
// boolean reports whether a snapshot existed; (nil, false, nil) means
// "no file — boot fresh".
func LoadSnapshot(path string, cfg admit.Config) (*admit.Controller, bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var sn admit.Snapshot
	if err := json.Unmarshal(data, &sn); err != nil {
		// A truncated or corrupt file is an operator problem, not a
		// boot-fresh situation: refuse loudly, naming the file and where
		// parsing died, rather than silently discarding admitted state.
		var syn *json.SyntaxError
		if errors.As(err, &syn) {
			return nil, false, fmt.Errorf("server: snapshot %s: corrupt or truncated at byte %d of %d: %w",
				path, syn.Offset, len(data), err)
		}
		return nil, false, fmt.Errorf("server: snapshot %s: %w", path, err)
	}
	c, err := admit.Restore(&sn, cfg)
	if err != nil {
		return nil, false, fmt.Errorf("server: snapshot %s: %w", path, err)
	}
	return c, true, nil
}
