package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/admit"
	"repro/internal/topology"
)

// newTestServer boots a server over a fresh 10×10-mesh controller and
// returns an httptest harness around its handler. The HTTP lifecycle
// (real listener, graceful shutdown) is exercised by internal/e2e;
// these tests pin the route behaviour.
func newTestServer(t *testing.T, snapshotPath string) (*Server, *httptest.Server) {
	t.Helper()
	ctl, err := admit.New(topology.NewMesh2D(10, 10), admit.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Controller: ctl, SnapshotPath: snapshotPath})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.httpSrv.Handler)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// paperStream returns the worked example's stream i as a request body.
func paperStream(i int) StreamRequest {
	reqs := []StreamRequest{
		{Src: 37, Dst: 77, Priority: 5, Period: 15, Length: 4},
		{Src: 11, Dst: 45, Priority: 4, Period: 10, Length: 2},
		{Src: 12, Dst: 57, Priority: 3, Period: 40, Length: 4},
		{Src: 14, Dst: 58, Priority: 2, Period: 45, Length: 9},
		{Src: 16, Dst: 39, Priority: 1, Period: 50, Length: 6},
	}
	return reqs[i]
}

func TestAdmitReportWithdrawOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, "")

	var handles []admit.Handle
	for i := 0; i < 5; i++ {
		resp := postJSON(t, ts.URL+"/v1/streams", paperStream(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("admit %d: status %d", i, resp.StatusCode)
		}
		ar := decode[AdmitResponse](t, resp)
		if len(ar.Handles) != 1 || !ar.Feasible {
			t.Fatalf("admit %d: %+v", i, ar)
		}
		handles = append(handles, ar.Handles[0])
	}

	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	rep := decode[ReportResponse](t, resp)
	if !rep.Feasible || rep.Streams != 5 {
		t.Fatalf("report: %+v", rep)
	}
	wantU := []int{7, 8, 26, 30, 33}
	for i, v := range rep.Verdicts {
		if v.U != wantU[i] || v.Handle != handles[i] {
			t.Fatalf("verdict %d: %+v (want U=%d handle=%d)", i, v, wantU[i], handles[i])
		}
	}

	resp, err = http.Get(ts.URL + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[map[string][]StreamInfo](t, resp)
	if len(list["streams"]) != 5 {
		t.Fatalf("list: %+v", list)
	}
	if got := list["streams"][2]; got.Src != 12 || got.Period != 40 || got.Deadline != 40 {
		t.Fatalf("stream 2: %+v", got)
	}

	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/streams/%d", ts.URL, handles[2]), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("withdraw: status %d", resp.StatusCode)
	}
	wd := decode[map[string]int](t, resp)
	if wd["recomputed"] < 1 {
		t.Fatalf("withdraw recomputed %d", wd["recomputed"])
	}

	// Withdrawing again is a 404; a malformed handle is a 400.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double withdraw: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/banana", nil)
	resp, err = http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed handle: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestRejectionIs409WithStructuredBody(t *testing.T) {
	_, ts := newTestServer(t, "")
	// A modest stream along row 0, feasible on its own.
	postJSON(t, ts.URL+"/v1/streams", StreamRequest{
		Src: 0, Dst: 3, Priority: 1, Period: 60, Length: 6,
	}).Body.Close()
	// A top-priority hog over the same row: its blocking breaks the
	// first stream's deadline.
	resp := postJSON(t, ts.URL+"/v1/streams", StreamRequest{
		Src: 0, Dst: 5, Priority: 9, Period: 8, Length: 8, Deadline: 2000,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409", resp.StatusCode)
	}
	er := decode[ErrorResponse](t, resp)
	// Infeasible means the bound misses the deadline — either it
	// overshoots, or no bound exists at all (U < 0).
	if er.Rejection == nil || (er.Rejection.U >= 0 && er.Rejection.U <= er.Rejection.Deadline) {
		t.Fatalf("rejection: %+v", er)
	}
	// The rollback means the set is unchanged.
	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	rep := decode[ReportResponse](t, resp)
	if rep.Streams != 1 || !rep.Feasible {
		t.Fatalf("post-rejection report: %+v", rep)
	}
}

func TestJobBatchIsAtomic(t *testing.T) {
	_, ts := newTestServer(t, "")
	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Name:    "paper-example",
		Streams: []StreamRequest{paperStream(0), paperStream(1), paperStream(2)},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job admit: status %d", resp.StatusCode)
	}
	ar := decode[AdmitResponse](t, resp)
	if len(ar.Handles) != 3 {
		t.Fatalf("job handles: %+v", ar)
	}

	// A batch whose members conflict (a row-0 stream and a
	// higher-priority hog over the same row) admits nothing.
	resp = postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Streams: []StreamRequest{
			{Src: 0, Dst: 3, Priority: 1, Period: 60, Length: 6},
			{Src: 0, Dst: 5, Priority: 9, Period: 8, Length: 8, Deadline: 2000},
		},
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("infeasible job: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	rep := decode[ReportResponse](t, resp)
	if rep.Streams != 3 {
		t.Fatalf("after failed job: %d streams, want 3", rep.Streams)
	}

	// Empty and malformed jobs are 400s.
	resp = postJSON(t, ts.URL+"/v1/jobs", JobRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty job: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"nope": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestMetricsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, "")
	postJSON(t, ts.URL+"/v1/streams", paperStream(0)).Body.Close()
	postJSON(t, ts.URL+"/v1/streams", paperStream(1)).Body.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body := buf.String()
	for _, want := range []string{
		"rtwormd_streams 2",
		"rtwormd_admitted_total 2",
		"rtwormd_rejected_total 0",
		"rtwormd_withdrawn_total 0",
		"rtwormd_snapshot_errors_total 0",
		"rtwormd_admit_latency_us_count 2",
		"rtwormd_withdraw_latency_us_count 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestSnapshotPersistAndRestore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	s, ts := newTestServer(t, path)

	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/streams", paperStream(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("admit %d: %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// The snapshot on disk is valid JSON and round-trips through
	// LoadSnapshot into an identical controller.
	ctl2, ok, err := LoadSnapshot(path, admit.Config{})
	if err != nil || !ok {
		t.Fatalf("LoadSnapshot: ok=%v err=%v", ok, err)
	}
	if ctl2.Len() != 3 {
		t.Fatalf("restored %d streams", ctl2.Len())
	}
	r1, r2 := s.ctl.Report(), ctl2.Report()
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("restored report differs:\n%s\n%s", b1, b2)
	}
	// No temp files left behind by the atomic rename.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.json" {
		t.Fatalf("leftover files: %v", entries)
	}
	// A missing file is not an error: boot fresh.
	_, ok, err = LoadSnapshot(filepath.Join(dir, "absent.json"), admit.Config{})
	if err != nil || ok {
		t.Fatalf("absent snapshot: ok=%v err=%v", ok, err)
	}
}

func TestSnapshotWriteFailureReportsCommitted(t *testing.T) {
	// Point the snapshot at a directory that does not exist: the
	// mutation commits in memory, the persist fails, and the client is
	// told both facts.
	dir := t.TempDir()
	s, ts := newTestServer(t, filepath.Join(dir, "missing-subdir", "state.json"))
	resp := postJSON(t, ts.URL+"/v1/streams", paperStream(0))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	er := decode[ErrorResponse](t, resp)
	if !er.Committed || !strings.Contains(er.Error, "snapshot") {
		t.Fatalf("error body: %+v", er)
	}
	if s.ctl.Len() != 1 {
		t.Fatalf("mutation not committed: %d streams", s.ctl.Len())
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "rtwormd_snapshot_errors_total 1") {
		t.Fatalf("snapshot error not counted:\n%s", buf.String())
	}
}
