package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/topology"
)

// newOverloadServer boots a server with a deliberately tiny mutation
// queue and slow mutations, so tests can fill the queue on demand.
func newOverloadServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	ctl, err := admit.New(topology.NewMesh2D(10, 10), admit.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Controller = ctl
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.httpSrv.Handler)
	t.Cleanup(ts.Close)
	return s, ts
}

// TestOverloadSheds429WithRetryAfter pins the shed contract: when the
// queue is full past QueueWait, mutations get 429 with a parseable
// whole-second Retry-After header, and every shed mutation left the
// stream set untouched.
func TestOverloadSheds429WithRetryAfter(t *testing.T) {
	s, ts := newOverloadServer(t, Config{
		MaxQueuedMutations: 1,
		QueueWait:          time.Millisecond,
		RetryAfter:         1500 * time.Millisecond, // rounds up to "2"
		MutationDelay:      50 * time.Millisecond,
	})

	const n = 8
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := StreamRequest{Src: i, Dst: 99 - i, Priority: i + 1, Period: 200, Length: 1}
			body, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/streams", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
				ra := resp.Header.Get("Retry-After")
				secs, err := strconv.Atoi(ra)
				if err != nil || secs < 1 {
					t.Errorf("Retry-After %q not a positive whole-second count", ra)
				}
				if secs != 2 {
					t.Errorf("Retry-After %q, want 2 (1.5s rounded up)", ra)
				}
				var e ErrorResponse
				if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "overloaded") {
					t.Errorf("shed body: %+v, %v", e, err)
				}
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	if shed.Load() == 0 {
		t.Fatalf("no sheds out of %d concurrent mutations against a 1-slot queue", n)
	}
	// Committed exactly what the clients were told: Len == number of 200s.
	if got := s.ctl.Len(); int64(got) != ok.Load() {
		t.Fatalf("controller holds %d streams, clients saw %d acks", got, ok.Load())
	}
	if s.overload.Load() != shed.Load() {
		t.Fatalf("shed counter %d, observed %d", s.overload.Load(), shed.Load())
	}
}

// TestOverloadMetricsExported: the shed counter and queue-depth gauge
// appear on /metrics once backpressure has fired.
func TestOverloadMetricsExported(t *testing.T) {
	s, ts := newOverloadServer(t, Config{
		MaxQueuedMutations: 1,
		QueueWait:          0, // shed immediately when full
		MutationDelay:      30 * time.Millisecond,
	})

	// Occupy the only slot, then collide with it.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, _ := json.Marshal(paperStream(0))
		resp, err := http.Post(ts.URL+"/v1/streams", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the slow mutation take the slot
	body, _ := json.Marshal(paperStream(1))
	resp, err := http.Post(ts.URL+"/v1/streams", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("collision status %d, want 429", resp.StatusCode)
	}
	wg.Wait()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	doc, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{"rtwormd_overload_shed_total 1", "rtwormd_mutation_queue_depth"} {
		if !strings.Contains(string(doc), want) {
			t.Fatalf("metrics missing %q:\n%s", want, doc)
		}
	}
	if got := s.ctl.Len(); got != 1 {
		t.Fatalf("controller len %d after one ack", got)
	}
}

// TestBackpressureDisabledByDefault: the zero config queues without
// shedding — existing deployments see no behaviour change.
func TestBackpressureDisabledByDefault(t *testing.T) {
	_, ts := newOverloadServer(t, Config{MutationDelay: 5 * time.Millisecond})
	var wg sync.WaitGroup
	var not200 atomic.Int64
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(paperStream(i % 5))
			resp, err := http.Post(ts.URL+"/v1/streams", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			// Duplicate sources 409; what must never appear is 429.
			if resp.StatusCode == http.StatusTooManyRequests {
				not200.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if not200.Load() != 0 {
		t.Fatalf("%d mutations shed with backpressure disabled", not200.Load())
	}
}
