// Package exp regenerates every table and figure of the paper's
// evaluation (§5) plus the worked examples of §4, wiring together the
// workload generator, the delay-bound analyzer (package core), the
// flit-level simulator (package sim) and the metrics aggregation. The
// command-line tools (cmd/tables, cmd/figures) and the benchmark
// harness (bench_test.go) are thin wrappers around this package.
package exp

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TableSpec describes one experiment of the paper's table family:
// random periodic streams on a 10×10 mesh, analysed and then simulated
// under flit-level preemption.
type TableSpec struct {
	Name    string
	Streams int
	PLevels int
	Seed    int64
	Trials  int // independent seeds averaged together (paper: 1 run)
	Cycles  int // simulated flit times (paper: 30000)
	Warmup  int // start-up flit times omitted (paper: 200)
	Arbiter sim.ArbiterKind
	// Pattern selects the destination distribution (default: the
	// paper's spatial uniform distribution).
	Pattern workload.Pattern
}

// PaperTable returns the specification of Tables 1-5.
//
//	Table 1: 1 priority level, 20 streams
//	Table 2: 1 priority level, 60 streams
//	Table 3: 4 priority levels, 20 streams
//	Table 4: 5 priority levels, 20 streams
//	Table 5: 15 priority levels, 60 streams
func PaperTable(n int) (TableSpec, error) {
	specs := map[int]TableSpec{
		1: {Name: "Table 1: 1 priority level, 20 message streams", Streams: 20, PLevels: 1},
		2: {Name: "Table 2: 1 priority level, 60 message streams", Streams: 60, PLevels: 1},
		3: {Name: "Table 3: 4 priority levels, 20 message streams", Streams: 20, PLevels: 4},
		4: {Name: "Table 4: 5 priority levels, 20 message streams", Streams: 20, PLevels: 5},
		5: {Name: "Table 5: 15 priority levels, 60 message streams", Streams: 60, PLevels: 15},
	}
	s, ok := specs[n]
	if !ok {
		return TableSpec{}, fmt.Errorf("exp: no paper table %d", n)
	}
	s.Seed = int64(1000 + n)
	s.Trials = 3
	s.Cycles = 30000
	s.Warmup = 200
	s.Arbiter = sim.Preemptive
	return s, nil
}

func (t TableSpec) withDefaults() TableSpec {
	if t.Trials == 0 {
		t.Trials = 1
	}
	if t.Cycles == 0 {
		t.Cycles = 30000
	}
	if t.Warmup == 0 {
		t.Warmup = 200
	}
	return t
}

// TableResult is the averaged outcome of a table experiment.
type TableResult struct {
	Spec   TableSpec
	Trials []*metrics.RatioTable
	// Rows averages the per-trial level rows (matched by priority).
	Rows []metrics.LevelRow
}

// RunTable generates the workload, computes every stream's delay upper
// bound, simulates the network, and aggregates the ratio table —
// averaged over the spec's trials. Trials are independent (one seed
// each) and run concurrently.
func RunTable(spec TableSpec) (*TableResult, error) {
	spec = spec.withDefaults()
	out := &TableResult{Spec: spec}
	acc := map[int]*metrics.LevelRow{}
	counts := map[int]int{}

	type trialOut struct {
		table *metrics.RatioTable
		err   error
	}
	results := make([]trialOut, spec.Trials)
	var wg sync.WaitGroup
	for trial := 0; trial < spec.Trials; trial++ {
		trial := trial
		wg.Add(1)
		go func() {
			defer wg.Done()
			table, err := runTrial(spec, spec.Seed+int64(trial)*7919)
			//rtwlint:ignore unsyncshared each trial writes only its own slot; wg.Wait orders the reads
			results[trial] = trialOut{table, err}
		}()
	}
	wg.Wait()
	for trial, res := range results {
		if res.err != nil {
			return nil, fmt.Errorf("exp: trial %d: %w", trial, res.err)
		}
		table := res.table
		out.Trials = append(out.Trials, table)
		for _, row := range table.Rows {
			a, ok := acc[row.Priority]
			if !ok {
				a = &metrics.LevelRow{Priority: row.Priority}
				acc[row.Priority] = a
			}
			a.Streams += row.Streams
			a.Observed += row.Observed
			a.MeanRatio += row.MeanRatio
			a.MaxRatio += row.MaxRatio
			a.Exceeded += row.Exceeded
			if row.Worst > a.Worst {
				a.Worst = row.Worst
			}
			counts[row.Priority]++
		}
	}
	for p := spec.PLevels; p >= 1; p-- {
		a, ok := acc[p]
		if !ok {
			continue
		}
		n := float64(counts[p])
		a.MeanRatio /= n
		a.MaxRatio /= n
		out.Rows = append(out.Rows, *a)
	}
	return out, nil
}

func runTrial(spec TableSpec, seed int64) (*metrics.RatioTable, error) {
	cfg := workload.PaperDefaults(spec.Streams, spec.PLevels, seed)
	set, analyzer, err := workload.GeneratePattern(cfg, spec.Pattern)
	if err != nil {
		return nil, err
	}
	us := make([]int, set.Len())
	calc := analyzer.NewCalc()
	for _, s := range set.Streams {
		u, err := calc.CalUSearchCap(s.ID, 1<<16)
		if err != nil {
			return nil, err
		}
		us[s.ID] = u
	}
	simulator, err := sim.New(set, sim.Config{
		Cycles:  spec.Cycles,
		Warmup:  spec.Warmup,
		Arbiter: spec.Arbiter,
	})
	if err != nil {
		return nil, err
	}
	res := simulator.Run()
	return metrics.Build(spec.Name, set, us, res)
}

// Format renders the averaged table in the paper's style.
func (r *TableResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (avg of %d trials, %d flit times, %s)\n",
		r.Spec.Name, r.Spec.Trials, r.Spec.Cycles, r.Spec.Arbiter)
	fmt.Fprintf(&b, "%-10s %8s %12s %12s %10s\n", "priority", "streams", "mean/U", "max/U", "exceeded")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "P = %-6d %8d %12.3f %12.3f %10d\n",
			row.Priority, row.Streams, row.MeanRatio, row.MaxRatio, row.Exceeded)
	}
	return b.String()
}

// TopRatio returns the mean ratio of the highest priority level.
func (r *TableResult) TopRatio() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	return r.Rows[0].MeanRatio
}

// BottomRatio returns the mean ratio of the lowest priority level.
func (r *TableResult) BottomRatio() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	return r.Rows[len(r.Rows)-1].MeanRatio
}

// RuleSweepResult records, for one stream count, the smallest number of
// priority levels whose top-level mean ratio exceeds the target — the
// paper's "at least |M|/4 priority levels are needed for ratio > 0.9"
// observation.
type RuleSweepResult struct {
	Streams   int
	Target    float64
	MinLevels int // -1 if not reached within MaxLevels
	MaxLevels int
	Ratios    []float64 // top-level ratio per level count, index 0 = 1 level
}

// RunRuleSweep sweeps the number of priority levels for a fixed stream
// count until the top-priority mean ratio exceeds target.
func RunRuleSweep(streams int, target float64, maxLevels int, seed int64, cycles int) (*RuleSweepResult, error) {
	out := &RuleSweepResult{Streams: streams, Target: target, MinLevels: -1, MaxLevels: maxLevels}
	for lv := 1; lv <= maxLevels; lv++ {
		res, err := RunTable(TableSpec{
			Name:    fmt.Sprintf("sweep %d streams, %d levels", streams, lv),
			Streams: streams, PLevels: lv,
			Seed: seed, Trials: 3, Cycles: cycles, Warmup: 200,
		})
		if err != nil {
			return nil, err
		}
		out.Ratios = append(out.Ratios, res.TopRatio())
		if out.MinLevels < 0 && res.TopRatio() > target {
			out.MinLevels = lv
		}
	}
	return out, nil
}

// Format renders the sweep result.
func (r *RuleSweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "|M| = %d streams, target top-level ratio > %.2f\n", r.Streams, r.Target)
	for i, ratio := range r.Ratios {
		marker := " "
		if i+1 == r.MinLevels {
			marker = "*"
		}
		fmt.Fprintf(&b, "%s %2d levels: top ratio %.3f\n", marker, i+1, ratio)
	}
	if r.MinLevels > 0 {
		fmt.Fprintf(&b, "minimum levels for target: %d (|M|/4 = %.1f)\n", r.MinLevels, float64(r.Streams)/4)
	} else {
		fmt.Fprintf(&b, "target not reached within %d levels\n", r.MaxLevels)
	}
	return b.String()
}
