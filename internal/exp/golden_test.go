package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden compares got against testdata/<name>.golden, rewriting the
// file under -update. Pinning the rendered figure bodies guards the
// reproduction artifacts themselves against silent regressions in the
// analysis, the renderer, or the worked-example wiring.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(want) != got {
		t.Fatalf("output differs from %s (run with -update after verifying):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

func TestGoldenFigure4(t *testing.T) {
	rep, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "figure4", rep.Body)
}

func TestGoldenFigure6(t *testing.T) {
	rep, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "figure6", rep.Body)
}

func TestGoldenWorkedExample(t *testing.T) {
	rep, err := WorkedExample()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "worked_example", rep.Body)
}
