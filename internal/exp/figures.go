package exp

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/topology"
)

// WorkedExampleSet builds the five-stream example of §4.4 on a 10×10
// mesh with X-Y routing.
func WorkedExampleSet() (*stream.Set, error) {
	m := topology.NewMesh2D(10, 10)
	r := routing.NewXY(m)
	set := stream.NewSet(m)
	type row struct{ sx, sy, dx, dy, p, t, c, d int }
	rows := []row{
		{7, 3, 7, 7, 5, 15, 4, 15},
		{1, 1, 5, 4, 4, 10, 2, 10},
		{2, 1, 7, 5, 3, 40, 4, 40},
		{4, 1, 8, 5, 2, 45, 9, 45},
		{6, 1, 9, 3, 1, 50, 6, 50},
	}
	for _, x := range rows {
		if _, err := set.Add(r, m.ID(x.sx, x.sy), m.ID(x.dx, x.dy), x.p, x.t, x.c, x.d); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// FigureReport is a rendered figure reproduction: a text body plus the
// headline quantities a test or bench can assert on.
type FigureReport struct {
	Title  string
	Body   string
	Values map[string]int
}

// Figure4Diagram builds the initial timing diagram of Figure 4: three
// direct blockers (T=10/15/13, C=2/3/4) over a 30-slot horizon.
func Figure4Diagram() (*core.Diagram, error) {
	return core.NewDiagram([]core.Element{
		{ID: 1, Priority: 4, Period: 10, Length: 2, Mode: core.Direct},
		{ID: 2, Priority: 3, Period: 15, Length: 3, Mode: core.Direct},
		{ID: 3, Priority: 2, Period: 13, Length: 4, Mode: core.Direct},
	}, 30)
}

// Figure6Diagram builds the modified timing diagram of Figure 6 (the
// blocking chain M1 -> M2 -> M3 -> M4).
func Figure6Diagram() (*core.Diagram, error) {
	d, err := core.NewDiagram([]core.Element{
		{ID: 1, Priority: 4, Period: 10, Length: 2, Mode: core.Indirect, Via: []stream.ID{2}},
		{ID: 2, Priority: 3, Period: 15, Length: 3, Mode: core.Indirect, Via: []stream.ID{3}},
		{ID: 3, Priority: 2, Period: 13, Length: 4, Mode: core.Direct},
	}, 30)
	if err != nil {
		return nil, err
	}
	d.Modify()
	return d, nil
}

// WorkedExampleDiagrams builds the initial (Figure 7) and final
// (Figure 9) timing diagrams of HP_4 from the §4.4 example.
func WorkedExampleDiagrams() (initial, final *core.Diagram, err error) {
	set, err := WorkedExampleSet()
	if err != nil {
		return nil, nil, err
	}
	a, err := core.NewAnalyzer(set)
	if err != nil {
		return nil, nil, err
	}
	if initial, err = a.InitialDiagram(4, 50); err != nil {
		return nil, nil, err
	}
	if final, err = a.Diagram(4, 50); err != nil {
		return nil, nil, err
	}
	return initial, final, nil
}

// Figure4 reproduces the direct-blocking U calculation of Figure 4:
// three direct blockers (T=10/15/13, C=2/3/4) and a stream of network
// latency 6, whose bound is 26.
func Figure4() (*FigureReport, error) {
	d, err := Figure4Diagram()
	if err != nil {
		return nil, err
	}
	u := d.DelayUpperBound(6)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: U calculation for a direct blocking (HP = {M1, M2, M3})\n")
	b.WriteString(d.Render(0))
	fmt.Fprintf(&b, "network latency of M4 = 6 -> U = %d (paper: 26)\n", u)
	return &FigureReport{
		Title:  "Figure 4",
		Body:   b.String(),
		Values: map[string]int{"U": u},
	}, nil
}

// Figure6 reproduces the indirect-blocking refinement of Figures 5/6:
// the blocking chain M1 -> M2 -> M3 -> M4 removes M1's second and third
// instances and reduces the bound to 22.
func Figure6() (*FigureReport, error) {
	d, err := Figure6Diagram()
	if err != nil {
		return nil, err
	}
	u := d.DelayUpperBound(6)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: U calculation for an indirect blocking (BDG: M1->M2->M3->M4)\n")
	b.WriteString(d.Render(0))
	fmt.Fprintf(&b, "network latency of M4 = 6 -> U = %d (paper: 22)\n", u)
	return &FigureReport{
		Title:  "Figure 6",
		Body:   b.String(),
		Values: map[string]int{"U": u},
	}, nil
}

// WorkedExample reproduces the full §4.4 pipeline: HP sets (Figure 3's
// construction applied to the example), the blocking dependency graph
// of HP_4 (Figure 8), the initial timing diagram of HP_4 (Figure 7, 7
// free slots) and the final diagram after Modify_Diagram (Figure 9,
// U_4 = 33), plus every stream's delay upper bound.
func WorkedExample() (*FigureReport, error) {
	set, err := WorkedExampleSet()
	if err != nil {
		return nil, err
	}
	a, err := core.NewAnalyzer(set)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("Worked example (paper §4.4) on a 10x10 mesh, X-Y routing\n\nHP sets:\n")
	for i := 0; i < set.Len(); i++ {
		hp, err := a.HP(stream.ID(i))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %s\n", hp.String())
	}
	g, err := a.BDG(4)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "\nFigure 8 — %s\n", g.String())

	init, err := a.InitialDiagram(4, 50)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "\nFigure 7 — initial timing diagram of HP_4 (%d free slots; L_4 = 10, so the deadline cannot be guaranteed yet):\n", init.FreeSlots(50))
	b.WriteString(init.Render(0))

	final, err := a.Diagram(4, 50)
	if err != nil {
		return nil, err
	}
	values := map[string]int{"freeInitial": init.FreeSlots(50)}
	fmt.Fprintf(&b, "\nFigure 9 — final timing diagram of HP_4 (after Modify_Diagram):\n")
	b.WriteString(final.Render(0))

	b.WriteString("\nDelay upper bounds:\n")
	for i := 0; i < set.Len(); i++ {
		u, err := a.CalU(stream.ID(i))
		if err != nil {
			return nil, err
		}
		values[fmt.Sprintf("U%d", i)] = u
		fmt.Fprintf(&b, "  U_%d = %d (D_%d = %d)\n", i, u, i, set.Get(stream.ID(i)).Deadline)
	}
	b.WriteString("paper: U = (7, 8, 26, -, 33); U_3 differs because the printed HP_3 omits M2/M0 (see EXPERIMENTS.md)\n")
	return &FigureReport{Title: "Worked example §4.4", Body: b.String(), Values: values}, nil
}

// Figure2 demonstrates the priority-inversion problem of Figure 2: the
// same three-stream workload simulated with classic non-preemptive
// wormhole switching and with the paper's flit-level preemptive scheme.
// The high-priority stream's worst latency explodes without preemption
// and stays at its unloaded network latency with it.
func Figure2(cycles int) (*FigureReport, error) {
	if cycles <= 0 {
		cycles = 10000
	}
	m := topology.NewMesh2D(4, 2)
	r := routing.NewXY(m)
	set := stream.NewSet(m)
	add := func(sx, sy, dx, dy, p, t, c, d int) error {
		_, err := set.Add(r, m.ID(sx, sy), m.ID(dx, dy), p, t, c, d)
		return err
	}
	// S saturates the vertical channel; L's long worm blocks behind S
	// while holding the row channel that H needs (see Figure 2: the
	// blocked lower-priority message permanently blocks message B).
	if err := add(2, 0, 2, 1, 2, 20, 18, 100); err != nil {
		return nil, err
	}
	if err := add(0, 0, 2, 1, 1, 60, 10, 200); err != nil {
		return nil, err
	}
	if err := add(0, 0, 1, 0, 3, 10, 2, 50); err != nil {
		return nil, err
	}
	offsets := []int{0, 0, 5}

	run := func(kind sim.ArbiterKind) (*sim.Result, error) {
		s, err := sim.New(set, sim.Config{Cycles: cycles, Arbiter: kind, Offsets: offsets})
		if err != nil {
			return nil, err
		}
		return s.Run(), nil
	}
	non, err := run(sim.NonPreemptivePriority)
	if err != nil {
		return nil, err
	}
	pre, err := run(sim.Preemptive)
	if err != nil {
		return nil, err
	}
	hiL := set.Get(2).Latency
	var b strings.Builder
	b.WriteString("Figure 2: priority inversion in non-preemptive wormhole switching\n")
	fmt.Fprintf(&b, "high-priority stream H: %d hops, %d flits, unloaded latency %d\n",
		set.Get(2).Path.Hops(), set.Get(2).Length, hiL)
	fmt.Fprintf(&b, "  non-preemptive (classic wormhole): max latency %d, mean %.1f, deadline misses %d\n",
		non.PerStream[2].MaxLatency, non.PerStream[2].Mean(), non.PerStream[2].Misses)
	fmt.Fprintf(&b, "  flit-level preemptive (paper):     max latency %d, mean %.1f, deadline misses %d\n",
		pre.PerStream[2].MaxLatency, pre.PerStream[2].Mean(), pre.PerStream[2].Misses)
	return &FigureReport{
		Title: "Figure 2",
		Body:  b.String(),
		Values: map[string]int{
			"nonpreemptiveMax": non.PerStream[2].MaxLatency,
			"preemptiveMax":    pre.PerStream[2].MaxLatency,
			"unloaded":         hiL,
		},
	}, nil
}
