package exp

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestLoadSweepShape(t *testing.T) {
	scales := []float64{2.0, 1.0, 0.5}
	pts, err := LoadSweep(15, 3, 9, scales, sim.Preemptive, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points: %d", len(pts))
	}
	// More load (smaller scale) never reduces mean latency
	// significantly; allow small noise but require the heaviest point
	// to be the worst.
	if pts[2].MeanLat < pts[0].MeanLat {
		t.Fatalf("latency should grow with load: %v", pts)
	}
	for _, p := range pts {
		if p.Delivered == 0 || p.MeanLat <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
	}
}

// TestLoadSweepPreemptionProtectsTopPriority: at high load, the
// top-priority mean latency under preemption stays below the
// non-preemptive one.
func TestLoadSweepPreemptionProtectsTopPriority(t *testing.T) {
	scales := []float64{0.5}
	pre, err := LoadSweep(15, 3, 9, scales, sim.Preemptive, 10000)
	if err != nil {
		t.Fatal(err)
	}
	non, err := LoadSweep(15, 3, 9, scales, sim.NonPreemptivePriority, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if pre[0].TopMeanLat > non[0].TopMeanLat {
		t.Fatalf("preemption should protect the top priority under load: %.1f vs %.1f",
			pre[0].TopMeanLat, non[0].TopMeanLat)
	}
}

func TestLoadSweepValidation(t *testing.T) {
	if _, err := LoadSweep(5, 2, 1, nil, sim.Preemptive, 1000); err == nil {
		t.Fatal("accepted empty scales")
	}
	if _, err := LoadSweep(5, 2, 1, []float64{-1}, sim.Preemptive, 1000); err == nil {
		t.Fatal("accepted negative scale")
	}
}

func TestFormatLoadSweep(t *testing.T) {
	pts, err := LoadSweep(10, 2, 3, []float64{1.0, 0.8}, sim.Preemptive, 4000)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatLoadSweep("load sweep", map[string][]LoadPoint{"preemptive": pts})
	if !strings.Contains(out, "preemptive") || !strings.Contains(out, "1.00") {
		t.Fatalf("format:\n%s", out)
	}
	if FormatLoadSweep("empty", map[string][]LoadPoint{}) == "" {
		t.Fatal("empty sweep should still render a header")
	}
}

// TestQuantizationSweepImproves: more VCs tighten the top-band ratio.
func TestQuantizationSweepImproves(t *testing.T) {
	pts, err := QuantizationSweep(16, []int{1, 8}, 5, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points: %+v", pts)
	}
	if pts[1].TopRatio <= pts[0].TopRatio {
		t.Fatalf("8 VCs should beat 1 VC: %+v", pts)
	}
	if _, err := QuantizationSweep(16, []int{0}, 5, 1000); err == nil {
		t.Fatal("accepted zero VCs")
	}
}

// TestRouterLatencySweep: both the mean bound and the mean measured
// latency grow with the router pipeline depth, and measurement never
// exceeds bound on average.
func TestRouterLatencySweep(t *testing.T) {
	pts, err := RouterLatencySweep(10, 10, 4, []int{0, 2}, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points: %+v", pts)
	}
	if pts[1].MeanU <= pts[0].MeanU {
		t.Fatalf("bound should grow with pipeline depth: %+v", pts)
	}
	if pts[1].MeanActual <= pts[0].MeanActual {
		t.Fatalf("measured latency should grow with pipeline depth: %+v", pts)
	}
	for _, p := range pts {
		if p.MeanActual > p.MeanU {
			t.Fatalf("mean measurement above mean bound: %+v", p)
		}
	}
	if _, err := RouterLatencySweep(5, 2, 1, []int{-1}, 1000); err == nil {
		t.Fatal("accepted negative depth")
	}
}
