package exp

import (
	"testing"

	"repro/internal/sim"
)

func TestFigure2DefaultCycles(t *testing.T) {
	rep, err := Figure2(0) // defaults to 10000
	if err != nil {
		t.Fatal(err)
	}
	if rep.Values["preemptiveMax"] != rep.Values["unloaded"] {
		t.Fatalf("values: %v", rep.Values)
	}
}

func TestWorkedExampleSetValid(t *testing.T) {
	set, err := WorkedExampleSet()
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if set.Len() != 5 {
		t.Fatalf("streams: %d", set.Len())
	}
}

func TestRunTableBadPattern(t *testing.T) {
	// Transpose on the 10x10 paper mesh is fine, but asking for more
	// streams than the pattern can place must surface the error.
	_, err := RunTable(TableSpec{Name: "x", Streams: 95, PLevels: 1, Trials: 1, Cycles: 1000, Pattern: 1 /* transpose */})
	if err == nil {
		t.Fatal("expected pattern placement error")
	}
}

func TestLoadSweepArbiters(t *testing.T) {
	// Li arbiter path through the sweep.
	pts, err := LoadSweep(8, 2, 2, []float64{1.5}, sim.Li, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Delivered == 0 {
		t.Fatal("nothing delivered under Li")
	}
}
