package exp

import (
	"strings"
	"testing"
)

func TestPaperTableSpecs(t *testing.T) {
	want := map[int][2]int{1: {20, 1}, 2: {60, 1}, 3: {20, 4}, 4: {20, 5}, 5: {60, 15}}
	for n, w := range want {
		spec, err := PaperTable(n)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Streams != w[0] || spec.PLevels != w[1] {
			t.Fatalf("table %d: %d streams / %d levels, want %v", n, spec.Streams, spec.PLevels, w)
		}
		if spec.Cycles != 30000 || spec.Warmup != 200 {
			t.Fatalf("table %d: cycles/warmup %d/%d", n, spec.Cycles, spec.Warmup)
		}
	}
	if _, err := PaperTable(9); err == nil {
		t.Fatal("accepted unknown table")
	}
}

// TestTable1Shape: with a single priority level the bounds are loose —
// the paper reports mean ratios below 0.5; we accept anything below
// 0.75 as reproducing "loose", and require positive ratios.
func TestTable1Shape(t *testing.T) {
	spec, _ := PaperTable(1)
	spec.Trials = 1
	spec.Cycles = 15000
	res, err := RunTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	r := res.Rows[0].MeanRatio
	if r <= 0 || r >= 0.75 {
		t.Fatalf("single-level mean ratio = %.3f, want loose (0, 0.75)", r)
	}
	if !strings.Contains(res.Format(), "Table 1") {
		t.Fatal("Format missing title")
	}
}

// TestTable3TopPriorityTight: with 4 levels over 20 streams the top
// level's bound is tight (the paper's central claim: bounds are very
// close to actual delays for high-priority messages).
func TestTable3TopPriorityTight(t *testing.T) {
	spec, _ := PaperTable(3)
	spec.Trials = 2
	spec.Cycles = 15000
	res, err := RunTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.TopRatio() < 0.8 {
		t.Fatalf("top-priority mean ratio = %.3f, want >= 0.8\n%s", res.TopRatio(), res.Format())
	}
	if res.BottomRatio() > res.TopRatio() {
		t.Fatalf("bottom ratio %.3f above top ratio %.3f", res.BottomRatio(), res.TopRatio())
	}
}

// TestMoreLevelsTightenTopBound: the paper's observation that more
// priority levels give better (higher) ratios, comparing 1 level
// against 5 levels on the same 20-stream workload size.
func TestMoreLevelsTightenTopBound(t *testing.T) {
	one, err := RunTable(TableSpec{Name: "1 level", Streams: 20, PLevels: 1, Seed: 77, Trials: 2, Cycles: 15000, Warmup: 200})
	if err != nil {
		t.Fatal(err)
	}
	five, err := RunTable(TableSpec{Name: "5 levels", Streams: 20, PLevels: 5, Seed: 77, Trials: 2, Cycles: 15000, Warmup: 200})
	if err != nil {
		t.Fatal(err)
	}
	if five.TopRatio() <= one.TopRatio() {
		t.Fatalf("5-level top ratio %.3f not above 1-level ratio %.3f", five.TopRatio(), one.TopRatio())
	}
}

func TestFigure4Report(t *testing.T) {
	rep, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Values["U"] != 26 {
		t.Fatalf("Figure 4 U = %d, want 26", rep.Values["U"])
	}
	if !strings.Contains(rep.Body, "legend") {
		t.Fatal("missing diagram render")
	}
}

func TestFigure6Report(t *testing.T) {
	rep, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Values["U"] != 22 {
		t.Fatalf("Figure 6 U = %d, want 22", rep.Values["U"])
	}
}

func TestWorkedExampleReport(t *testing.T) {
	rep, err := WorkedExample()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"U0": 7, "U1": 8, "U2": 26, "U3": 30, "U4": 33, "freeInitial": 7}
	for k, v := range want {
		if rep.Values[k] != v {
			t.Fatalf("%s = %d, want %d", k, rep.Values[k], v)
		}
	}
	for _, s := range []string{"HP_4", "Figure 8", "Figure 7", "Figure 9", "INDIRECT"} {
		if !strings.Contains(rep.Body, s) {
			t.Fatalf("report missing %q", s)
		}
	}
}

func TestFigure2Report(t *testing.T) {
	rep, err := Figure2(4000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Values["preemptiveMax"] != rep.Values["unloaded"] {
		t.Fatalf("preemptive max %d != unloaded %d", rep.Values["preemptiveMax"], rep.Values["unloaded"])
	}
	if rep.Values["nonpreemptiveMax"] < 5*rep.Values["unloaded"] {
		t.Fatalf("no inversion: nonpreemptive max %d", rep.Values["nonpreemptiveMax"])
	}
}

// TestRuleSweepSmall: a reduced-size sweep still shows the ratio
// improving with the number of levels.
func TestRuleSweepSmall(t *testing.T) {
	res, err := RunRuleSweep(12, 0.85, 6, 5, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ratios) != 6 {
		t.Fatalf("ratios = %v", res.Ratios)
	}
	if res.Ratios[5] <= res.Ratios[0] {
		t.Fatalf("top ratio did not improve with levels: %v", res.Ratios)
	}
	if !strings.Contains(res.Format(), "|M| = 12") {
		t.Fatal("Format missing header")
	}
}
