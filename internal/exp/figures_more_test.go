package exp

import "testing"

func TestWorkedExampleDiagrams(t *testing.T) {
	initial, final, err := WorkedExampleDiagrams()
	if err != nil {
		t.Fatal(err)
	}
	if initial.FreeSlots(50) != 7 {
		t.Fatalf("initial free slots = %d, want 7", initial.FreeSlots(50))
	}
	if u := final.DelayUpperBound(10); u != 33 {
		t.Fatalf("final U = %d, want 33", u)
	}
}

func TestFigureDiagramBuilders(t *testing.T) {
	d4, err := Figure4Diagram()
	if err != nil {
		t.Fatal(err)
	}
	if u := d4.DelayUpperBound(6); u != 26 {
		t.Fatalf("figure 4 U = %d", u)
	}
	d6, err := Figure6Diagram()
	if err != nil {
		t.Fatal(err)
	}
	if u := d6.DelayUpperBound(6); u != 22 {
		t.Fatalf("figure 6 U = %d", u)
	}
}

func TestTableSpecHelpers(t *testing.T) {
	spec := TableSpec{Name: "x", Streams: 5, PLevels: 2}.withDefaults()
	if spec.Trials != 1 || spec.Cycles != 30000 || spec.Warmup != 200 {
		t.Fatalf("defaults: %+v", spec)
	}
	empty := &TableResult{}
	if empty.TopRatio() != 0 || empty.BottomRatio() != 0 {
		t.Fatal("empty ratios should be 0")
	}
}

func TestPatternTable(t *testing.T) {
	res, err := RunTable(TableSpec{
		Name: "hotspot", Streams: 10, PLevels: 3, Seed: 3,
		Trials: 1, Cycles: 4000, Warmup: 100, Pattern: 3, // workload.Hotspot
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
}
