package exp

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/priority"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/workload"
)

// LoadPoint is one point of a latency-vs-load curve.
type LoadPoint struct {
	Scale      float64 // period scale: 1.0 = the generated workload, smaller = more load
	MeanLat    float64 // mean latency over all streams
	TopMeanLat float64 // mean latency of the highest priority level
	Misses     int
	Delivered  int
}

// LoadSweep produces the classic saturation curve: the same workload is
// injected at increasing rates (periods scaled down) and simulated
// under the given switching discipline. Near saturation, the mean
// latency of classic non-preemptive wormhole switching blows up first;
// the paper's preemptive scheme keeps the high-priority latency flat —
// the behavioural claim behind Figure 2, swept over load instead of a
// single adversarial scenario.
func LoadSweep(streams, plevels int, seed int64, scales []float64, arbiter sim.ArbiterKind, cycles int) ([]LoadPoint, error) {
	// The load-scale axis is validated up front by the shared grid
	// helpers (package grid), the same machinery the design-space
	// explorer sweeps with, so the two kinds of sweep cannot drift.
	if err := grid.PositiveFloats("load scale", scales); err != nil {
		return nil, fmt.Errorf("exp: %w", err)
	}
	cfg := workload.PaperDefaults(streams, plevels, seed)
	cfg.InflatePeriods = false
	base, _, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	topPrio := 0
	for _, s := range base.Streams {
		if s.Priority > topPrio {
			topPrio = s.Priority
		}
	}
	var out []LoadPoint
	for _, scale := range scales {
		scaled := stream.NewSet(base.Topology)
		scaled.RouterLatency = base.RouterLatency
		for _, s := range base.Streams {
			period := int(float64(s.Period) * scale)
			if period < s.Length {
				period = s.Length // keep per-stream load <= 100%
			}
			ns := *s
			ns.ID = stream.ID(scaled.Len())
			ns.Period = period
			ns.Deadline = period
			scaled.Streams = append(scaled.Streams, &ns)
		}
		simulator, err := sim.New(scaled, sim.Config{Cycles: cycles, Warmup: 200, Arbiter: arbiter})
		if err != nil {
			return nil, err
		}
		res := simulator.Run()
		p := LoadPoint{Scale: scale}
		var sum float64
		var n int
		var topSum float64
		var topN int
		for i := range res.PerStream {
			st := &res.PerStream[i]
			if st.Observed == 0 {
				continue
			}
			sum += st.Mean()
			n++
			p.Misses += st.Misses
			p.Delivered += st.Observed
			if scaled.Get(stream.ID(i)).Priority == topPrio {
				topSum += st.Mean()
				topN++
			}
		}
		if n > 0 {
			p.MeanLat = sum / float64(n)
		}
		if topN > 0 {
			p.TopMeanLat = topSum / float64(topN)
		}
		out = append(out, p)
	}
	return out, nil
}

// FormatLoadSweep renders one curve per arbiter, given parallel result
// slices.
func FormatLoadSweep(title string, byArbiter map[string][]LoadPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-8s", title, "scale")
	var names []string
	for name := range byArbiter {
		names = append(names, name)
	}
	// Stable order: preemptive first if present.
	orderHint := []string{"preemptive", "li", "nonpreemptive-priority", "nonpreemptive-fifo"}
	var ordered []string
	for _, h := range orderHint {
		for _, n := range names {
			if n == h {
				ordered = append(ordered, n)
			}
		}
	}
	for _, n := range names {
		found := false
		for _, o := range ordered {
			if o == n {
				found = true
			}
		}
		if !found {
			ordered = append(ordered, n)
		}
	}
	for _, n := range ordered {
		fmt.Fprintf(&b, " %22s", n+" mean/top")
	}
	b.WriteByte('\n')
	if len(ordered) == 0 {
		return b.String()
	}
	for i := range byArbiter[ordered[0]] {
		fmt.Fprintf(&b, "%-8.2f", byArbiter[ordered[0]][i].Scale)
		for _, n := range ordered {
			p := byArbiter[n][i]
			fmt.Fprintf(&b, " %12.1f/%9.1f", p.MeanLat, p.TopMeanLat)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// QuantizationPoint records bound tightness when many logical
// priorities are squeezed onto few virtual channels.
type QuantizationPoint struct {
	VCs      int
	TopRatio float64
	Exceeded int
}

// QuantizationSweep generates one workload with per-stream distinct
// logical priorities (rate-monotonic order) and quantizes it onto
// progressively fewer VC levels, reporting the top-band ratio — the
// paper's "practical resource constraints" trade-off made concrete.
func QuantizationSweep(streams int, vcCounts []int, seed int64, cycles int) ([]QuantizationPoint, error) {
	if err := grid.PositiveInts("vc count", vcCounts); err != nil {
		return nil, fmt.Errorf("exp: %w", err)
	}
	var out []QuantizationPoint
	for _, vcs := range vcCounts {
		cfg := workload.PaperDefaults(streams, 1, seed)
		cfg.InflatePeriods = false
		set, _, err := workload.Generate(cfg)
		if err != nil {
			return nil, err
		}
		if err := (priority.RateMonotonic{}).Assign(set); err != nil {
			return nil, err
		}
		if err := (priority.Quantize{Levels: vcs}).Assign(set); err != nil {
			return nil, err
		}
		analyzer, err := core.NewAnalyzer(set)
		if err != nil {
			return nil, err
		}
		set, analyzer, err = reinflate(set, analyzer)
		if err != nil {
			return nil, err
		}
		us := make([]int, set.Len())
		calc := analyzer.NewCalc()
		for _, s := range set.Streams {
			if us[s.ID], err = calc.CalUSearchCap(s.ID, 1<<16); err != nil {
				return nil, err
			}
		}
		simulator, err := sim.New(set, sim.Config{Cycles: cycles, Warmup: 200})
		if err != nil {
			return nil, err
		}
		res := simulator.Run()
		table, err := metrics.Build(fmt.Sprintf("%d VCs", vcs), set, us, res)
		if err != nil {
			return nil, err
		}
		p := QuantizationPoint{VCs: vcs, TopRatio: table.TopLevelMeanRatio()}
		for _, row := range table.Rows {
			p.Exceeded += row.Exceeded
		}
		out = append(out, p)
	}
	return out, nil
}

// RouterLatencyPoint records bound and measurement for one router
// pipeline depth.
type RouterLatencyPoint struct {
	R          int
	MeanU      float64 // mean delay bound over the bounded streams
	MeanActual float64 // mean measured latency over observed streams
}

// RouterLatencySweep re-runs a fixed workload with increasing per-hop
// router pipeline depth: both the analytical bounds and the simulated
// latencies grow together, showing the model extension stays
// consistent end to end.
func RouterLatencySweep(streams, plevels int, seed int64, depths []int, cycles int) ([]RouterLatencyPoint, error) {
	if err := grid.NonNegativeInts("router latency", depths); err != nil {
		return nil, fmt.Errorf("exp: %w", err)
	}
	var out []RouterLatencyPoint
	for _, r := range depths {
		cfg := workload.PaperDefaults(streams, plevels, seed)
		cfg.InflatePeriods = false
		base, _, err := workload.Generate(cfg)
		if err != nil {
			return nil, err
		}
		// Rebuild the same streams on a set with router latency r.
		set := stream.NewSetWithRouterLatency(base.Topology, r)
		for _, s := range base.Streams {
			ns := *s
			ns.ID = stream.ID(set.Len())
			ns.Latency = stream.NetworkLatencyWithRouter(s.Path.Hops(), s.Length, r)
			set.Streams = append(set.Streams, &ns)
		}
		analyzer, err := core.NewAnalyzer(set)
		if err != nil {
			return nil, err
		}
		set, analyzer, err = reinflate(set, analyzer)
		if err != nil {
			return nil, err
		}
		simulator, err := sim.New(set, sim.Config{Cycles: cycles, Warmup: 200})
		if err != nil {
			return nil, err
		}
		res := simulator.Run()
		p := RouterLatencyPoint{R: r}
		var nu, na int
		calc := analyzer.NewCalc()
		for _, s := range set.Streams {
			u, err := calc.CalUSearchCap(s.ID, 1<<16)
			if err != nil {
				return nil, err
			}
			if u > 0 {
				p.MeanU += float64(u)
				nu++
			}
			if st := &res.PerStream[s.ID]; st.Observed > 0 {
				p.MeanActual += st.Mean()
				na++
			}
		}
		if nu > 0 {
			p.MeanU /= float64(nu)
		}
		if na > 0 {
			p.MeanActual /= float64(na)
		}
		out = append(out, p)
	}
	return out, nil
}

// reinflate applies the paper's period-inflation rule to an externally
// re-prioritised set.
func reinflate(set *stream.Set, a *core.Analyzer) (*stream.Set, *core.Analyzer, error) {
	var err error
	for pass := 0; pass < 8; pass++ {
		changed := false
		calc := a.NewCalc()
		for _, s := range set.Streams {
			u, err := calc.CalUSearchCap(s.ID, 1<<16)
			if err != nil {
				return nil, nil, err
			}
			if u > s.Period {
				s.Period, s.Deadline = u, u
				changed = true
			} else if u < 0 {
				// Inflating past the search cap is pointless (the
				// capped Cal_U search cannot use it) and the clamp
				// keeps the quadrupling provably inside int64.
				p := s.Period
				if p < 1 {
					p = 1
				}
				if p > core.MaxSearchHorizon/4 {
					p = core.MaxSearchHorizon / 4
				}
				s.Period = p * 4
				s.Deadline = s.Period
				changed = true
			}
		}
		if !changed {
			break
		}
		if a, err = core.NewAnalyzer(set); err != nil {
			return nil, nil, err
		}
	}
	return set, a, nil
}
