// Package topology models the direct interconnection networks on which
// real-time wormhole communication is analysed and simulated: 2D meshes,
// 2D tori, hypercubes and rings.
//
// A topology is a set of nodes connected by directed physical channels.
// Every physical channel carries one flit per flit time; virtual channels
// multiplexed onto a physical channel are modelled by the simulator
// (package sim), not here.
package topology

import (
	"fmt"
	"sort"
)

// NodeID identifies a node of a topology. Valid IDs are 0..Nodes()-1.
type NodeID int

// Channel is a directed physical channel from one node to an adjacent
// node. Two messages conflict on a link only if they use the same
// directed channel; opposite directions of a bidirectional link are
// distinct channels.
type Channel struct {
	From, To NodeID
}

// String renders the channel as "from->to".
func (c Channel) String() string { return fmt.Sprintf("%d->%d", c.From, c.To) }

// Topology describes a direct network: a node set and its adjacency.
type Topology interface {
	// Name identifies the topology family and size, e.g. "mesh2d-10x10".
	Name() string
	// Nodes returns the number of nodes.
	Nodes() int
	// Neighbors returns the nodes adjacent to n, in deterministic order.
	Neighbors(n NodeID) []NodeID
	// HasEdge reports whether a directed channel from a to b exists.
	HasEdge(a, b NodeID) bool
}

// Channels enumerates every directed channel of t in deterministic order.
func Channels(t Topology) []Channel {
	var chs []Channel
	for n := 0; n < t.Nodes(); n++ {
		for _, m := range t.Neighbors(NodeID(n)) {
			chs = append(chs, Channel{NodeID(n), m})
		}
	}
	sort.Slice(chs, func(i, j int) bool {
		if chs[i].From != chs[j].From {
			return chs[i].From < chs[j].From
		}
		return chs[i].To < chs[j].To
	})
	return chs
}

// Validate reports an error if n is not a node of t.
func Validate(t Topology, n NodeID) error {
	if n < 0 || int(n) >= t.Nodes() {
		return fmt.Errorf("topology %s: node %d out of range [0,%d)", t.Name(), n, t.Nodes())
	}
	return nil
}
