package topology

import "testing"

func TestRingBasics(t *testing.T) {
	r := NewRing(8)
	if got := r.Nodes(); got != 8 {
		t.Fatalf("Nodes() = %d, want 8", got)
	}
	if got := r.Name(); got != "ring-8" {
		t.Fatalf("Name() = %q", got)
	}
}

func TestRingNeighborOrder(t *testing.T) {
	r := NewRing(6)
	// Order: predecessor, successor — including across the wrap.
	cases := []struct {
		n          NodeID
		prev, next NodeID
	}{
		{0, 5, 1},
		{3, 2, 4},
		{5, 4, 0},
	}
	for _, c := range cases {
		nbs := r.Neighbors(c.n)
		if len(nbs) != 2 || nbs[0] != c.prev || nbs[1] != c.next {
			t.Fatalf("Neighbors(%d) = %v, want [%d %d]", c.n, nbs, c.prev, c.next)
		}
	}
}

func TestRingDegreeIsTwo(t *testing.T) {
	for _, n := range []int{3, 4, 7, 16} {
		r := NewRing(n)
		for v := 0; v < r.Nodes(); v++ {
			if got := len(r.Neighbors(NodeID(v))); got != 2 {
				t.Fatalf("ring-%d node %d has %d neighbours, want 2", n, v, got)
			}
		}
	}
}

func TestRingEdgeSymmetry(t *testing.T) {
	r := NewRing(9)
	for a := 0; a < r.Nodes(); a++ {
		for b := 0; b < r.Nodes(); b++ {
			if r.HasEdge(NodeID(a), NodeID(b)) != r.HasEdge(NodeID(b), NodeID(a)) {
				t.Fatalf("asymmetric edge between %d and %d", a, b)
			}
		}
	}
}

func TestRingWrapEdges(t *testing.T) {
	r := NewRing(5)
	if !r.HasEdge(0, 4) || !r.HasEdge(4, 0) {
		t.Fatal("missing wrap edges between 0 and 4")
	}
	if r.HasEdge(0, 2) || r.HasEdge(1, 3) {
		t.Fatal("chord edge present on a ring")
	}
}

func TestRingNoSelfLoops(t *testing.T) {
	r := NewRing(4)
	for n := 0; n < r.Nodes(); n++ {
		if r.HasEdge(NodeID(n), NodeID(n)) {
			t.Fatalf("self loop at %d", n)
		}
	}
}

func TestRingChannelCount(t *testing.T) {
	// A bidirectional N-ring has exactly 2N directed channels.
	for _, n := range []int{3, 6, 11} {
		r := NewRing(n)
		if got := len(Channels(r)); got != 2*n {
			t.Fatalf("ring-%d has %d directed channels, want %d", n, got, 2*n)
		}
	}
}

func TestRingPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{-1, 0, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewRing(%d) did not panic", n)
				}
			}()
			NewRing(n)
		}()
	}
}
