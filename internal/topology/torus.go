package topology

import "fmt"

// Torus2D is a W×H two-dimensional torus: a mesh with wrap-around
// channels in both dimensions. Node (x, y) has ID y*W + x.
type Torus2D struct {
	W, H int
}

// NewTorus2D returns a W×H torus. It panics if either dimension is < 2,
// because wrap-around channels on a dimension of extent 1 would be
// self-loops.
func NewTorus2D(w, h int) *Torus2D {
	if w < 2 || h < 2 {
		panic(fmt.Sprintf("topology: invalid torus dimensions %dx%d", w, h))
	}
	return &Torus2D{W: w, H: h}
}

// Name implements Topology.
func (t *Torus2D) Name() string { return fmt.Sprintf("torus2d-%dx%d", t.W, t.H) }

// Nodes implements Topology.
func (t *Torus2D) Nodes() int { return t.W * t.H }

// ID returns the node ID of coordinate (x, y) taken modulo the extents.
func (t *Torus2D) ID(x, y int) NodeID {
	x = ((x % t.W) + t.W) % t.W
	y = ((y % t.H) + t.H) % t.H
	return NodeID(y*t.W + x)
}

// XY returns the coordinate of node n.
func (t *Torus2D) XY(n NodeID) (x, y int) { return int(n) % t.W, int(n) / t.W }

// Neighbors implements Topology. Order: -x, +x, -y, +y (wrapping).
// On a dimension of extent 2 the two directions reach the same node, so
// the neighbour appears once.
func (t *Torus2D) Neighbors(n NodeID) []NodeID {
	x, y := t.XY(n)
	out := make([]NodeID, 0, 4)
	add := func(id NodeID) {
		for _, e := range out {
			if e == id {
				return
			}
		}
		out = append(out, id)
	}
	add(t.ID(x-1, y))
	add(t.ID(x+1, y))
	add(t.ID(x, y-1))
	add(t.ID(x, y+1))
	return out
}

// HasEdge implements Topology.
func (t *Torus2D) HasEdge(a, b NodeID) bool {
	if a < 0 || b < 0 || int(a) >= t.Nodes() || int(b) >= t.Nodes() || a == b {
		return false
	}
	for _, m := range t.Neighbors(a) {
		if m == b {
			return true
		}
	}
	return false
}

var _ Topology = (*Torus2D)(nil)
