package topology

import "fmt"

// Hypercube is a binary d-cube with 2^d nodes. Two nodes are adjacent
// iff their IDs differ in exactly one bit. The paper's system model
// names the hypercube alongside the mesh as a candidate interconnect.
type Hypercube struct {
	Dim int
}

// NewHypercube returns a d-dimensional hypercube. It panics for d < 1
// or d > 20 (2^20 nodes is far beyond any realistic analysis size).
func NewHypercube(d int) *Hypercube {
	if d < 1 || d > 20 {
		panic(fmt.Sprintf("topology: invalid hypercube dimension %d", d))
	}
	return &Hypercube{Dim: d}
}

// Name implements Topology.
func (h *Hypercube) Name() string { return fmt.Sprintf("hypercube-%d", h.Dim) }

// Nodes implements Topology.
func (h *Hypercube) Nodes() int { return 1 << h.Dim }

// Neighbors implements Topology. Order: ascending flipped-bit position.
func (h *Hypercube) Neighbors(n NodeID) []NodeID {
	out := make([]NodeID, 0, h.Dim)
	for b := 0; b < h.Dim; b++ {
		out = append(out, n^NodeID(1<<b))
	}
	return out
}

// HasEdge implements Topology.
func (h *Hypercube) HasEdge(a, b NodeID) bool {
	if a < 0 || b < 0 || int(a) >= h.Nodes() || int(b) >= h.Nodes() {
		return false
	}
	x := uint(a ^ b)
	return x != 0 && x&(x-1) == 0
}

var _ Topology = (*Hypercube)(nil)
