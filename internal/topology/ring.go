package topology

import "fmt"

// Ring is a bidirectional ring of N nodes: node i is connected to both
// (i-1) mod N and (i+1) mod N, each direction of each link being a
// distinct directed channel. The canonical deterministic router
// (routing.RingShortest) takes the shorter arc, ties broken clockwise,
// so rings slot into the same analysis/simulation pipeline as the
// meshes: static shortest paths, channel-overlap blocking, per-channel
// VCs in the simulator.
type Ring struct {
	N int
}

// NewRing returns an N-node ring. It panics for N < 3: two nodes would
// collapse both directions onto the same neighbour pair and a single
// node has no channels at all.
func NewRing(n int) *Ring {
	if n < 3 {
		panic(fmt.Sprintf("topology: invalid ring size %d", n))
	}
	return &Ring{N: n}
}

// Name implements Topology.
func (r *Ring) Name() string { return fmt.Sprintf("ring-%d", r.N) }

// Nodes implements Topology.
func (r *Ring) Nodes() int { return r.N }

// Neighbors implements Topology. Order: predecessor, successor.
func (r *Ring) Neighbors(n NodeID) []NodeID {
	prev := NodeID((int(n) - 1 + r.N) % r.N)
	next := NodeID((int(n) + 1) % r.N)
	if prev == next {
		return []NodeID{prev}
	}
	return []NodeID{prev, next}
}

// HasEdge implements Topology.
func (r *Ring) HasEdge(a, b NodeID) bool {
	if a < 0 || b < 0 || int(a) >= r.N || int(b) >= r.N || a == b {
		return false
	}
	d := (int(b) - int(a) + r.N) % r.N
	return d == 1 || d == r.N-1
}

var _ Topology = (*Ring)(nil)
