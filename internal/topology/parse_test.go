package topology

import "testing"

func TestParseRoundTripsNames(t *testing.T) {
	for _, topo := range []Topology{
		NewMesh2D(10, 10), NewMesh2D(4, 1), NewTorus2D(4, 8),
		NewHypercube(5), NewRing(16),
	} {
		got, err := Parse(topo.Name())
		if err != nil {
			t.Fatalf("Parse(%q): %v", topo.Name(), err)
		}
		if got.Name() != topo.Name() || got.Nodes() != topo.Nodes() {
			t.Fatalf("Parse(%q) = %s with %d nodes", topo.Name(), got.Name(), got.Nodes())
		}
	}
}

func TestParseRejectsMalformedNames(t *testing.T) {
	for _, name := range []string{
		"", "mesh2d", "mesh2d-10", "mesh2d-0x5", "mesh2d-axb",
		"torus2d-1x4", "hypercube-0", "hypercube-21", "hypercube-x",
		"ring-2", "ring-abc", "bus-4", "custom-3",
	} {
		if _, err := Parse(name); err == nil {
			t.Fatalf("Parse(%q) accepted", name)
		}
	}
}

func TestParseList(t *testing.T) {
	topos, err := ParseList("mesh2d-4x4, ring-8,hypercube-3")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"mesh2d-4x4", "ring-8", "hypercube-3"}
	if len(topos) != len(want) {
		t.Fatalf("got %d topologies, want %d", len(topos), len(want))
	}
	for i, w := range want {
		if topos[i].Name() != w {
			t.Fatalf("topos[%d] = %s, want %s", i, topos[i].Name(), w)
		}
	}
	if _, err := ParseList("ring-8,ring-8"); err == nil {
		t.Fatal("ParseList accepted a duplicate")
	}
	if _, err := ParseList(" , "); err == nil {
		t.Fatal("ParseList accepted an empty list")
	}
}
