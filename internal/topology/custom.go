package topology

import (
	"fmt"
	"sort"
)

// Custom is an arbitrary directed network given by an explicit edge
// list — switch boards, partially populated meshes, or a mesh with
// links removed after faults. Nodes are 0..N-1; edges are directed (add
// both directions for a bidirectional link).
type Custom struct {
	N     int
	Name_ string
	adj   [][]NodeID
	edges map[Channel]bool
}

// NewCustom builds a custom topology from a directed edge list. Edges
// must reference nodes in [0, n); self-loops and duplicates are
// rejected.
func NewCustom(name string, n int, edges []Channel) (*Custom, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: custom needs at least one node, got %d", n)
	}
	if name == "" {
		name = fmt.Sprintf("custom-%d", n)
	}
	c := &Custom{N: n, Name_: name, adj: make([][]NodeID, n), edges: make(map[Channel]bool, len(edges))}
	for _, e := range edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return nil, fmt.Errorf("topology: edge %s outside [0,%d)", e, n)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("topology: self-loop at %d", e.From)
		}
		if c.edges[e] {
			return nil, fmt.Errorf("topology: duplicate edge %s", e)
		}
		c.edges[e] = true
		c.adj[e.From] = append(c.adj[e.From], e.To)
	}
	for i := range c.adj {
		sort.Slice(c.adj[i], func(a, b int) bool { return c.adj[i][a] < c.adj[i][b] })
	}
	return c, nil
}

// Name implements Topology.
func (c *Custom) Name() string { return c.Name_ }

// Nodes implements Topology.
func (c *Custom) Nodes() int { return c.N }

// Neighbors implements Topology (ascending node order).
func (c *Custom) Neighbors(n NodeID) []NodeID {
	if n < 0 || int(n) >= c.N {
		return nil
	}
	out := make([]NodeID, len(c.adj[n]))
	copy(out, c.adj[n])
	return out
}

// HasEdge implements Topology.
func (c *Custom) HasEdge(a, b NodeID) bool { return c.edges[Channel{From: a, To: b}] }

var _ Topology = (*Custom)(nil)
