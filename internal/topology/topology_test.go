package topology

import (
	"testing"
	"testing/quick"
)

func TestMesh2DBasics(t *testing.T) {
	m := NewMesh2D(10, 10)
	if got := m.Nodes(); got != 100 {
		t.Fatalf("Nodes() = %d, want 100", got)
	}
	if got := m.Name(); got != "mesh2d-10x10" {
		t.Fatalf("Name() = %q", got)
	}
	if id := m.ID(7, 3); id != 37 {
		t.Fatalf("ID(7,3) = %d, want 37", id)
	}
	x, y := m.XY(37)
	if x != 7 || y != 3 {
		t.Fatalf("XY(37) = (%d,%d), want (7,3)", x, y)
	}
}

func TestMesh2DNeighborCounts(t *testing.T) {
	m := NewMesh2D(4, 3)
	counts := map[int]int{} // degree -> how many nodes
	for n := 0; n < m.Nodes(); n++ {
		counts[len(m.Neighbors(NodeID(n)))]++
	}
	// 4 corners (deg 2), edges: 2*(4-2)+2*(3-2)=6 (deg 3), interior 2 (deg 4).
	if counts[2] != 4 || counts[3] != 6 || counts[4] != 2 {
		t.Fatalf("degree histogram = %v, want map[2:4 3:6 4:2]", counts)
	}
}

func TestMesh2DEdgeSymmetry(t *testing.T) {
	m := NewMesh2D(5, 4)
	for a := 0; a < m.Nodes(); a++ {
		for b := 0; b < m.Nodes(); b++ {
			if m.HasEdge(NodeID(a), NodeID(b)) != m.HasEdge(NodeID(b), NodeID(a)) {
				t.Fatalf("asymmetric edge between %d and %d", a, b)
			}
		}
	}
}

func TestMesh2DNoSelfLoops(t *testing.T) {
	m := NewMesh2D(3, 3)
	for n := 0; n < m.Nodes(); n++ {
		if m.HasEdge(NodeID(n), NodeID(n)) {
			t.Fatalf("self loop at %d", n)
		}
	}
}

func TestMeshPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMesh2D(0, 5) did not panic")
		}
	}()
	NewMesh2D(0, 5)
}

func TestTorus2DBasics(t *testing.T) {
	tr := NewTorus2D(4, 4)
	if tr.Nodes() != 16 {
		t.Fatalf("Nodes() = %d", tr.Nodes())
	}
	// Every node of a torus has exactly 4 distinct neighbours when both
	// extents are > 2.
	tr2 := NewTorus2D(5, 3)
	for n := 0; n < tr2.Nodes(); n++ {
		if got := len(tr2.Neighbors(NodeID(n))); got != 4 {
			t.Fatalf("node %d has %d neighbours, want 4", n, got)
		}
	}
}

func TestTorus2DWrap(t *testing.T) {
	tr := NewTorus2D(4, 4)
	// (0,0) and (3,0) are adjacent via wrap-around.
	if !tr.HasEdge(tr.ID(0, 0), tr.ID(3, 0)) {
		t.Fatal("missing x wrap edge")
	}
	if !tr.HasEdge(tr.ID(0, 0), tr.ID(0, 3)) {
		t.Fatal("missing y wrap edge")
	}
	if tr.HasEdge(tr.ID(0, 0), tr.ID(2, 0)) {
		t.Fatal("unexpected edge across two hops")
	}
}

func TestTorus2DExtentTwoDedup(t *testing.T) {
	tr := NewTorus2D(2, 3)
	// In the extent-2 dimension, -x and +x reach the same node, which
	// must appear once.
	n := tr.ID(0, 0)
	nb := tr.Neighbors(n)
	seen := map[NodeID]bool{}
	for _, m := range nb {
		if seen[m] {
			t.Fatalf("duplicate neighbour %d in %v", m, nb)
		}
		seen[m] = true
	}
	if len(nb) != 3 { // one x neighbour (deduped), two y neighbours
		t.Fatalf("Neighbors = %v, want 3 entries", nb)
	}
}

func TestHypercubeBasics(t *testing.T) {
	h := NewHypercube(4)
	if h.Nodes() != 16 {
		t.Fatalf("Nodes() = %d", h.Nodes())
	}
	for n := 0; n < h.Nodes(); n++ {
		if got := len(h.Neighbors(NodeID(n))); got != 4 {
			t.Fatalf("node %d degree %d, want 4", n, got)
		}
	}
	if !h.HasEdge(0, 8) || h.HasEdge(0, 3) || h.HasEdge(5, 5) {
		t.Fatal("hypercube adjacency wrong")
	}
}

// Ring-specific coverage lives in ring_test.go alongside ring.go.

func TestChannelsEnumeration(t *testing.T) {
	m := NewMesh2D(3, 2)
	chs := Channels(m)
	// Directed channels of a WxH mesh: 2*(H*(W-1) + W*(H-1)).
	want := 2 * (2*2 + 3*1)
	if len(chs) != want {
		t.Fatalf("len(Channels) = %d, want %d", len(chs), want)
	}
	seen := map[Channel]bool{}
	for _, c := range chs {
		if seen[c] {
			t.Fatalf("duplicate channel %v", c)
		}
		seen[c] = true
		if !m.HasEdge(c.From, c.To) {
			t.Fatalf("channel %v is not an edge", c)
		}
	}
}

func TestValidate(t *testing.T) {
	m := NewMesh2D(3, 3)
	if err := Validate(m, 0); err != nil {
		t.Fatalf("Validate(0): %v", err)
	}
	if err := Validate(m, 8); err != nil {
		t.Fatalf("Validate(8): %v", err)
	}
	if err := Validate(m, 9); err == nil {
		t.Fatal("Validate(9) accepted out-of-range node")
	}
	if err := Validate(m, -1); err == nil {
		t.Fatal("Validate(-1) accepted negative node")
	}
}

// Property: for all topologies, Neighbors and HasEdge agree.
func TestNeighborsHasEdgeAgreementQuick(t *testing.T) {
	topos := []Topology{
		NewMesh2D(6, 5), NewTorus2D(5, 4), NewHypercube(4), NewRing(9),
	}
	for _, topo := range topos {
		topo := topo
		f := func(a, b uint16) bool {
			na := NodeID(int(a) % topo.Nodes())
			nb := NodeID(int(b) % topo.Nodes())
			inNb := false
			for _, m := range topo.Neighbors(na) {
				if m == nb {
					inNb = true
					break
				}
			}
			return inNb == topo.HasEdge(na, nb)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", topo.Name(), err)
		}
	}
}

// Property: mesh ID/XY round-trip.
func TestMeshIDXYRoundTripQuick(t *testing.T) {
	m := NewMesh2D(13, 7)
	f := func(raw uint16) bool {
		n := NodeID(int(raw) % m.Nodes())
		x, y := m.XY(n)
		return m.ID(x, y) == n && m.InBounds(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringer(t *testing.T) {
	c := Channel{From: 3, To: 4}
	if got := c.String(); got != "3->4" {
		t.Fatalf("String() = %q", got)
	}
}

func TestTopologyNames(t *testing.T) {
	if NewTorus2D(3, 4).Name() != "torus2d-3x4" ||
		NewHypercube(3).Name() != "hypercube-3" ||
		NewRing(5).Name() != "ring-5" {
		t.Fatal("names wrong")
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewTorus2D(1, 3) },
		func() { NewHypercube(0) },
		func() { NewHypercube(21) },
		func() { NewRing(2) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
