package topology

import "fmt"

// Mesh2D is a W×H two-dimensional mesh. Node (x, y) has ID y*W + x.
// Interior nodes have four neighbours; edges and corners fewer. This is
// the topology used throughout the paper's evaluation (a 10×10 mesh).
type Mesh2D struct {
	W, H int
}

// NewMesh2D returns a W×H mesh. It panics if either dimension is < 1,
// since a topology of non-positive extent is a programming error.
func NewMesh2D(w, h int) *Mesh2D {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("topology: invalid mesh dimensions %dx%d", w, h))
	}
	return &Mesh2D{W: w, H: h}
}

// Name implements Topology.
func (m *Mesh2D) Name() string { return fmt.Sprintf("mesh2d-%dx%d", m.W, m.H) }

// Nodes implements Topology.
func (m *Mesh2D) Nodes() int { return m.W * m.H }

// ID returns the node ID of coordinate (x, y).
func (m *Mesh2D) ID(x, y int) NodeID { return NodeID(y*m.W + x) }

// XY returns the coordinate of node n.
func (m *Mesh2D) XY(n NodeID) (x, y int) { return int(n) % m.W, int(n) / m.W }

// InBounds reports whether (x, y) is a valid coordinate.
func (m *Mesh2D) InBounds(x, y int) bool { return x >= 0 && x < m.W && y >= 0 && y < m.H }

// Neighbors implements Topology. Order: -x, +x, -y, +y.
func (m *Mesh2D) Neighbors(n NodeID) []NodeID {
	x, y := m.XY(n)
	out := make([]NodeID, 0, 4)
	if x > 0 {
		out = append(out, m.ID(x-1, y))
	}
	if x < m.W-1 {
		out = append(out, m.ID(x+1, y))
	}
	if y > 0 {
		out = append(out, m.ID(x, y-1))
	}
	if y < m.H-1 {
		out = append(out, m.ID(x, y+1))
	}
	return out
}

// HasEdge implements Topology.
func (m *Mesh2D) HasEdge(a, b NodeID) bool {
	if a < 0 || b < 0 || int(a) >= m.Nodes() || int(b) >= m.Nodes() {
		return false
	}
	ax, ay := m.XY(a)
	bx, by := m.XY(b)
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx+dy == 1
}

var _ Topology = (*Mesh2D)(nil)
