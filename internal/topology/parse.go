package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a topology from its canonical short name — the exact
// strings Name() produces:
//
//	mesh2d-10x10   torus2d-4x8   hypercube-5   ring-16
//
// so Parse(t.Name()) reconstructs t for every regular topology kind.
// Custom (irregular) topologies carry an edge list and have no short
// name; they are described by a stream.TopologySpec instead. The
// sweep tooling (cmd/rtwexplore, cmd/netsim) uses Parse for its
// comma-separated topology flags.
func Parse(name string) (Topology, error) {
	kind, rest, ok := strings.Cut(name, "-")
	if !ok {
		return nil, fmt.Errorf("topology: %q is not kind-size (e.g. mesh2d-10x10, ring-16)", name)
	}
	switch kind {
	case "mesh2d", "torus2d":
		ws, hs, ok := strings.Cut(rest, "x")
		if !ok {
			return nil, fmt.Errorf("topology: %q needs WxH dimensions", name)
		}
		w, err := parseDim(name, ws)
		if err != nil {
			return nil, err
		}
		h, err := parseDim(name, hs)
		if err != nil {
			return nil, err
		}
		if kind == "mesh2d" {
			if w < 1 || h < 1 {
				return nil, fmt.Errorf("topology: %q needs positive dimensions", name)
			}
			return NewMesh2D(w, h), nil
		}
		if w < 2 || h < 2 {
			return nil, fmt.Errorf("topology: %q needs dimensions >= 2", name)
		}
		return NewTorus2D(w, h), nil
	case "hypercube":
		d, err := parseDim(name, rest)
		if err != nil {
			return nil, err
		}
		if d < 1 || d > 20 {
			return nil, fmt.Errorf("topology: %q dimension out of range [1,20]", name)
		}
		return NewHypercube(d), nil
	case "ring":
		n, err := parseDim(name, rest)
		if err != nil {
			return nil, err
		}
		if n < 3 {
			return nil, fmt.Errorf("topology: %q needs at least 3 nodes", name)
		}
		return NewRing(n), nil
	default:
		return nil, fmt.Errorf("topology: unknown kind %q (want mesh2d, torus2d, hypercube or ring)", kind)
	}
}

// ParseList parses a comma-separated list of short names, preserving
// order and rejecting duplicates.
func ParseList(names string) ([]Topology, error) {
	var out []Topology
	seen := make(map[string]bool)
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if seen[name] {
			return nil, fmt.Errorf("topology: duplicate %q in list", name)
		}
		seen[name] = true
		t, err := Parse(name)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("topology: empty list %q", names)
	}
	return out, nil
}

func parseDim(name, s string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("topology: %q has a malformed size %q", name, s)
	}
	return v, nil
}
