package topology

import "testing"

func lineCustom(t *testing.T) *Custom {
	t.Helper()
	// 0 <-> 1 <-> 2, plus a one-way shortcut 0 -> 2.
	c, err := NewCustom("line3", 3, []Channel{
		{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCustomBasics(t *testing.T) {
	c := lineCustom(t)
	if c.Nodes() != 3 || c.Name() != "line3" {
		t.Fatalf("basics: %d %q", c.Nodes(), c.Name())
	}
	if !c.HasEdge(0, 2) || c.HasEdge(2, 0) {
		t.Fatal("directed edge handling wrong")
	}
	nb := c.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("Neighbors(0) = %v", nb)
	}
	if c.Neighbors(99) != nil {
		t.Fatal("out-of-range neighbours should be nil")
	}
}

func TestCustomValidation(t *testing.T) {
	cases := []struct {
		n     int
		edges []Channel
	}{
		{0, nil},                       // no nodes
		{2, []Channel{{0, 5}}},         // out of range
		{2, []Channel{{1, 1}}},         // self loop
		{2, []Channel{{0, 1}, {0, 1}}}, // duplicate
		{3, []Channel{{-1, 0}}},        // negative
	}
	for i, cse := range cases {
		if _, err := NewCustom("x", cse.n, cse.edges); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Default name.
	c, err := NewCustom("", 2, []Channel{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "custom-2" {
		t.Fatalf("default name %q", c.Name())
	}
}

func TestCustomChannelsEnumeration(t *testing.T) {
	c := lineCustom(t)
	chs := Channels(c)
	if len(chs) != 5 {
		t.Fatalf("channels: %v", chs)
	}
	for _, ch := range chs {
		if !c.HasEdge(ch.From, ch.To) {
			t.Fatalf("phantom channel %s", ch)
		}
	}
}
