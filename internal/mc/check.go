package mc

import (
	"fmt"
	"reflect"

	"repro/internal/sim"
	"repro/internal/stream"
)

// crossCheck re-runs the replication under the other engine and fails
// on any difference — the Monte-Carlo layer's end-to-end guard that
// the fast engine's statistics are byte-identical to the oracle's on
// the exact workloads under study.
func crossCheck(engine string, set *stream.Set, cfg sim.Config, got *sim.Result) error {
	other := EngineCycle
	if engine == "" || engine == EngineCycle {
		other = EngineEvent
	}
	want, err := RunEngine(other, set, cfg)
	if err != nil {
		return fmt.Errorf("check (%s engine): %w", other, err)
	}
	if reflect.DeepEqual(want, got) {
		return nil
	}
	for i := range want.PerStream {
		if !reflect.DeepEqual(want.PerStream[i], got.PerStream[i]) {
			return fmt.Errorf("check: stream %d stats differ between engines:\n %s: %+v\n %s: %+v",
				i, other, want.PerStream[i], engine, got.PerStream[i])
		}
	}
	return fmt.Errorf("check: results differ between engines (channel stats or run-level scalars)")
}
