package mc

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// JSON writes the full study result — summaries and every replication
// — as indented JSON.
func (r *Result) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CSV writes one row per replication, point-major in replication
// order, with the point's name and workload seed alongside the raw
// metrics — the shape downstream tooling wants for its own
// aggregation.
func (r *Result) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"point", "name", "topology", "arbiter", "buffer", "seed", "workloadSeed",
		"generated", "delivered", "observed", "misses", "unfinished",
		"missRatio", "meanLatency", "p95Latency", "maxLatency",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, rep := range r.Replications {
		p := r.Points[rep.Point]
		row := []string{
			strconv.Itoa(rep.Point), p.Name, p.Topology, p.ArbiterName, strconv.Itoa(p.Buffer),
			strconv.Itoa(rep.Seed), strconv.FormatInt(rep.WorkloadSeed, 10),
			strconv.Itoa(rep.Generated), strconv.Itoa(rep.Delivered), strconv.Itoa(rep.Observed),
			strconv.Itoa(rep.Misses), strconv.Itoa(rep.Unfinished),
			formatFloat(rep.MissRatio), formatFloat(rep.MeanLatency),
			strconv.Itoa(rep.P95Latency), strconv.Itoa(rep.MaxLatency),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table writes the human-readable summary: one block per point with
// mean ± CI95 for each metric.
func (r *Result) Table(w io.Writer) error {
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%s (%d streams, %d plevels, %d cycles, %d reps, %s engine)\n",
			p.Name, p.Streams, p.PLevels, p.Cycles, p.Reps, r.Engine); err != nil {
			return err
		}
		rows := []struct {
			name string
			d    Dist
		}{
			{"miss ratio", p.MissRatio},
			{"mean latency", p.MeanLatency},
			{"p95 latency", p.P95Latency},
			{"max latency", p.MaxLatency},
		}
		for _, row := range rows {
			if _, err := fmt.Fprintf(w, "  %-13s %10.4f ± %-8.4f  p50 %-9.4g p95 %-9.4g range [%.4g, %.4g]\n",
				row.name, row.d.Mean, row.d.CI95, row.d.P50, row.d.P95, row.d.Min, row.d.Max); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
