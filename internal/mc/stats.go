package mc

import (
	"math"
	"sort"
)

// Dist summarises one metric's distribution over a point's
// replications: sample mean and standard deviation, the half-width of
// the normal-approximation 95% confidence interval for the mean
// (1.96·s/√n), and the empirical quantiles.
type Dist struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`  // sample standard deviation (n-1)
	CI95 float64 `json:"ci95"` // ± half-width of the 95% CI for the mean
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// distOf computes a Dist over the values in order-independent fashion
// (the input is sorted internally; callers pass replication-ordered
// slices).
func distOf(vals []float64) Dist {
	n := len(vals)
	if n == 0 {
		return Dist{}
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(n)
	var sq float64
	for _, v := range vals {
		d := v - mean
		sq += d * d
	}
	var std float64
	if n > 1 {
		std = math.Sqrt(sq / float64(n-1))
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	return Dist{
		Mean: mean,
		Std:  std,
		CI95: 1.96 * std / math.Sqrt(float64(n)),
		P50:  quantile(sorted, 0.50),
		P95:  quantile(sorted, 0.95),
		Min:  sorted[0],
		Max:  sorted[n-1],
	}
}

// quantile returns the nearest-rank q-quantile of an ascending slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// summarize aggregates one point's replications (in replication order).
func summarize(p PointConfig, reps []Replication) PointSummary {
	s := PointSummary{PointConfig: p, ArbiterName: p.Arbiter.String(), Reps: len(reps)}
	pick := func(f func(Replication) float64) Dist {
		vals := make([]float64, len(reps))
		for i, r := range reps {
			vals[i] = f(r)
		}
		return distOf(vals)
	}
	s.MissRatio = pick(func(r Replication) float64 { return r.MissRatio })
	s.MeanLatency = pick(func(r Replication) float64 { return r.MeanLatency })
	s.P95Latency = pick(func(r Replication) float64 { return float64(r.P95Latency) })
	s.MaxLatency = pick(func(r Replication) float64 { return float64(r.MaxLatency) })
	return s
}
