// Package mc is the Monte-Carlo replication runner: N workload seeds ×
// M network configurations, fanned across a worker pool and aggregated
// into per-configuration distribution summaries (mean, percentiles,
// 95% confidence intervals).
//
// Replications are embarrassingly parallel and strictly deterministic:
// replication r of point p simulates a workload generated from
// grid.PointSeed(BaseSeed, p*Seeds+r), every replication is a pure
// function of that seed, and results are merged in replication-index
// order — so the output is byte-identical for any worker count.
package mc

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/eventsim"
	"repro/internal/grid"
	"repro/internal/hist"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Engine names accepted by Config.Engine (and the -engine CLI flags).
const (
	EngineCycle = "cycle"
	EngineEvent = "event"
)

// RunEngine runs one simulation under the named engine. The empty name
// means the cycle-accurate oracle; "event" selects the event-driven
// fast engine, which is pinned byte-identical by the eventsim
// differential battery.
func RunEngine(engine string, set *stream.Set, cfg sim.Config) (*sim.Result, error) {
	switch engine {
	case "", EngineCycle:
		s, err := sim.New(set, cfg)
		if err != nil {
			return nil, err
		}
		return s.Run(), nil
	case EngineEvent:
		s, err := eventsim.New(set, cfg)
		if err != nil {
			return nil, err
		}
		return s.Run(), nil
	default:
		return nil, fmt.Errorf("mc: unknown engine %q (want %q or %q)", engine, EngineCycle, EngineEvent)
	}
}

// PointConfig is one network configuration of the study: a topology
// and traffic shape plus the simulator knobs. The zero values of
// Cycles/Warmup/Buffer default to the §5 study's 30000/200/2.
type PointConfig struct {
	Name     string          `json:"name"`
	Topology string          `json:"topology"` // topology.Parse name
	Streams  int             `json:"streams"`
	PLevels  int             `json:"plevels"`
	Arbiter  sim.ArbiterKind `json:"-"`
	Buffer   int             `json:"buffer"`
	Cycles   int             `json:"cycles"`
	Warmup   int             `json:"warmup"`
}

func (p PointConfig) withDefaults() PointConfig {
	if p.Topology == "" {
		p.Topology = "mesh2d-10x10"
	}
	if p.Streams == 0 {
		p.Streams = 20
	}
	if p.PLevels == 0 {
		p.PLevels = 4
	}
	if p.Buffer == 0 {
		p.Buffer = 2
	}
	if p.Cycles == 0 {
		p.Cycles = 30000
	}
	if p.Name == "" {
		p.Name = fmt.Sprintf("%s/%s/b%d", p.Topology, p.Arbiter, p.Buffer)
	}
	return p
}

// Config parameterises a study.
type Config struct {
	// Seeds is the number of replications per point (>= 1).
	Seeds int
	// BaseSeed feeds grid.PointSeed; studies with the same base seed
	// simulate identical workloads.
	BaseSeed int64
	// Engine selects the simulation engine for every replication
	// ("cycle" by default).
	Engine string
	// Workers caps the worker pool; 0 means GOMAXPROCS. The worker
	// count never changes results, only wall-clock time.
	Workers int
	// Check cross-checks every replication against the cycle-accurate
	// oracle and fails the run on any stat mismatch. Meaningful with
	// Engine "event" (with "cycle" it just runs everything twice).
	Check bool
	// Points are the configurations under study.
	Points []PointConfig
}

// Replication is the outcome of one simulated workload.
type Replication struct {
	Point        int     `json:"point"`
	Seed         int     `json:"seed"` // replication index within the point
	WorkloadSeed int64   `json:"workloadSeed"`
	Generated    int     `json:"generated"`
	Delivered    int     `json:"delivered"`
	Observed     int     `json:"observed"` // deliveries inside the stats window
	Misses       int     `json:"misses"`
	Unfinished   int     `json:"unfinished"`
	MissRatio    float64 `json:"missRatio"`   // misses / observed
	MeanLatency  float64 `json:"meanLatency"` // over observed deliveries
	P95Latency   int     `json:"p95Latency"`
	MaxLatency   int     `json:"maxLatency"`
}

// PointSummary aggregates one point's replications.
type PointSummary struct {
	PointConfig
	ArbiterName string `json:"arbiter"`
	Reps        int    `json:"reps"`
	MissRatio   Dist   `json:"missRatio"`
	MeanLatency Dist   `json:"meanLatency"`
	P95Latency  Dist   `json:"p95Latency"`
	MaxLatency  Dist   `json:"maxLatency"`
}

// Result is the study outcome: every replication in deterministic
// order plus the per-point summaries.
type Result struct {
	Seeds        int            `json:"seeds"`
	BaseSeed     int64          `json:"baseSeed"`
	Engine       string         `json:"engine"`
	Points       []PointSummary `json:"points"`
	Replications []Replication  `json:"replications"`
}

func (c Config) validate() error {
	if c.Seeds < 1 {
		return fmt.Errorf("mc: seeds %d must be >= 1", c.Seeds)
	}
	if len(c.Points) == 0 {
		return fmt.Errorf("mc: no points")
	}
	if c.Workers < 0 {
		return fmt.Errorf("mc: workers %d must be >= 0", c.Workers)
	}
	switch c.Engine {
	case "", EngineCycle, EngineEvent:
	default:
		return fmt.Errorf("mc: unknown engine %q", c.Engine)
	}
	return nil
}

// Run executes the study. The returned result is a pure function of
// the configuration (never of worker scheduling); the first
// replication error, in replication order, aborts the run.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	points := make([]PointConfig, len(cfg.Points))
	for i, p := range cfg.Points {
		points[i] = p.withDefaults()
	}
	engine := cfg.Engine
	if engine == "" {
		engine = EngineCycle
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := len(points) * cfg.Seeds
	if workers > total {
		workers = total
	}

	// Workers only send on a channel — the merge loop below is the
	// single owner of every slice write — and the error of the
	// smallest replication index wins, so the outcome is identical for
	// every worker count and schedule.
	type repOut struct {
		pos int
		rep Replication
		err error
	}
	// Buffered so workers never block sending their last result.
	jobs := make(chan int, total)
	out := make(chan repOut, total)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				pi, si := i/cfg.Seeds, i%cfg.Seeds
				rep, err := runReplication(points[pi], pi, si,
					grid.PointSeed(cfg.BaseSeed, i), engine, cfg.Check)
				out <- repOut{pos: i, rep: rep, err: err}
			}
		}()
	}
	for i := 0; i < total; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(out)
	reps := make([]Replication, total)
	firstErr := -1
	var errAt error
	for o := range out {
		if o.err != nil {
			if firstErr < 0 || o.pos < firstErr {
				firstErr, errAt = o.pos, o.err
			}
			continue
		}
		reps[o.pos] = o.rep
	}
	if firstErr >= 0 {
		return nil, fmt.Errorf("mc: point %d seed %d: %w", firstErr/cfg.Seeds, firstErr%cfg.Seeds, errAt)
	}

	res := &Result{Seeds: cfg.Seeds, BaseSeed: cfg.BaseSeed, Engine: engine, Replications: reps}
	for pi, p := range points {
		res.Points = append(res.Points, summarize(p, reps[pi*cfg.Seeds:(pi+1)*cfg.Seeds]))
	}
	return res, nil
}

// runReplication simulates one generated workload and extracts the
// replication's scalar metrics.
func runReplication(p PointConfig, pi, si int, wseed int64, engine string, check bool) (Replication, error) {
	rep := Replication{Point: pi, Seed: si, WorkloadSeed: wseed}
	topo, err := topology.Parse(p.Topology)
	if err != nil {
		return rep, err
	}
	wcfg := workload.PaperDefaults(p.Streams, p.PLevels, wseed)
	set, _, err := workload.GenerateOn(topo, wcfg)
	if err != nil {
		return rep, err
	}
	scfg := sim.Config{
		Cycles: p.Cycles, Warmup: p.Warmup,
		Arbiter: p.Arbiter, BufferDepth: p.Buffer,
	}
	r, err := RunEngine(engine, set, scfg)
	if err != nil {
		return rep, err
	}
	if check {
		if err := crossCheck(engine, set, scfg, r); err != nil {
			return rep, err
		}
	}

	var lat hist.H
	var sumLat int64
	for i := range r.PerStream {
		st := &r.PerStream[i]
		rep.Generated += st.Generated
		rep.Delivered += st.Delivered
		rep.Observed += st.Observed
		rep.Misses += st.Misses
		rep.Unfinished += st.Unfinished
		sumLat += st.SumLatency
		lat.Merge(&st.Latencies)
		if st.Observed > 0 && st.MaxLatency > rep.MaxLatency {
			rep.MaxLatency = st.MaxLatency
		}
	}
	if rep.Observed > 0 {
		rep.MissRatio = float64(rep.Misses) / float64(rep.Observed)
		rep.MeanLatency = float64(sumLat) / float64(rep.Observed)
		rep.P95Latency = lat.Quantile(0.95)
	}
	return rep, nil
}
