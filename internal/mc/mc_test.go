package mc

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func smallConfig() Config {
	return Config{
		Seeds:    4,
		BaseSeed: 7,
		Points: []PointConfig{
			{Topology: "mesh2d-6x6", Streams: 10, PLevels: 4, Arbiter: sim.Preemptive, Cycles: 3000, Warmup: 100},
			{Topology: "ring-8", Streams: 6, PLevels: 3, Arbiter: sim.NonPreemptiveFIFO, Cycles: 3000, Warmup: 100},
		},
	}
}

// TestRunMatchesDirectSimulation pins a replication's extracted
// metrics against a by-hand simulation of the same derived seed.
func TestRunMatchesDirectSimulation(t *testing.T) {
	cfg := smallConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replications) != 8 || len(res.Points) != 2 {
		t.Fatalf("got %d replications, %d points", len(res.Replications), len(res.Points))
	}
	// Replication (point 1, seed 2) has index 1*4+2 = 6.
	rep := res.Replications[6]
	wseed := grid.PointSeed(cfg.BaseSeed, 6)
	if rep.WorkloadSeed != wseed {
		t.Fatalf("workload seed %d, want %d", rep.WorkloadSeed, wseed)
	}
	topo, err := topology.Parse("ring-8")
	if err != nil {
		t.Fatal(err)
	}
	set, _, err := workload.GenerateOn(topo, workload.PaperDefaults(6, 3, wseed))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(set, sim.Config{Cycles: 3000, Warmup: 100, Arbiter: sim.NonPreemptiveFIFO, BufferDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	direct := s.Run()
	if rep.Delivered != direct.TotalDelivered() || rep.Misses != direct.TotalMisses() {
		t.Fatalf("replication (delivered=%d misses=%d) vs direct (delivered=%d misses=%d)",
			rep.Delivered, rep.Misses, direct.TotalDelivered(), direct.TotalMisses())
	}
}

// TestEngineEquivalence runs the same small study under both engines
// and requires identical replication metrics.
func TestEngineEquivalence(t *testing.T) {
	cfg := smallConfig()
	cycle, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = EngineEvent
	event, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cycle.Replications {
		if cycle.Replications[i] != event.Replications[i] {
			t.Fatalf("replication %d differs:\n cycle: %+v\n event: %+v",
				i, cycle.Replications[i], event.Replications[i])
		}
	}
}

// TestCheckMode exercises the per-replication engine cross-check.
func TestCheckMode(t *testing.T) {
	cfg := smallConfig()
	cfg.Seeds = 2
	cfg.Engine = EngineEvent
	cfg.Check = true
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDistOf(t *testing.T) {
	d := distOf([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if d.Mean != 5 {
		t.Fatalf("mean %v, want 5", d.Mean)
	}
	if got := 2.13808993529939; math.Abs(d.Std-got) > 1e-12 {
		t.Fatalf("std %v, want %v", d.Std, got)
	}
	if want := 1.96 * d.Std / math.Sqrt(8); math.Abs(d.CI95-want) > 1e-12 {
		t.Fatalf("ci95 %v, want %v", d.CI95, want)
	}
	if d.P50 != 4 || d.P95 != 9 || d.Min != 2 || d.Max != 9 {
		t.Fatalf("quantiles %+v", d)
	}
	one := distOf([]float64{3})
	if one.Mean != 3 || one.Std != 0 || one.CI95 != 0 || one.P50 != 3 {
		t.Fatalf("singleton dist %+v", one)
	}
}

func TestValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Seeds: 0, Points: []PointConfig{{}}},
		{Seeds: 1},
		{Seeds: 1, Workers: -1, Points: []PointConfig{{}}},
		{Seeds: 1, Engine: "warp", Points: []PointConfig{{}}},
	} {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if _, err := Run(Config{Seeds: 1, Points: []PointConfig{{Topology: "nonsense-3"}}}); err == nil {
		t.Fatal("bad topology accepted")
	}
}

// TestOutputs sanity-checks the three encoders on a real result.
func TestOutputs(t *testing.T) {
	cfg := smallConfig()
	cfg.Seeds = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"missRatio"`) {
		t.Fatalf("JSON missing missRatio: %s", buf.String()[:200])
	}
	buf.Reset()
	if err := res.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+4 {
		t.Fatalf("CSV has %d lines, want 5", len(lines))
	}
	if !strings.HasPrefix(lines[0], "point,name,topology,arbiter") {
		t.Fatalf("CSV header %q", lines[0])
	}
	buf.Reset()
	if err := res.Table(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "miss ratio") {
		t.Fatalf("table output %q", buf.String())
	}
}
