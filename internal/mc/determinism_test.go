package mc

import (
	"bytes"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestWorkerCountInvariance runs the same study at workers = 1, 4 and
// GOMAXPROCS and requires byte-identical output: the replication seeds
// derive from (base, index) alone and results merge in index order, so
// worker scheduling must never show through.
func TestWorkerCountInvariance(t *testing.T) {
	cfg := smallConfig()
	cfg.Engine = EngineEvent
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var ref *Result
	var refJSON []byte
	for _, w := range counts {
		cfg.Workers = w
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		var buf bytes.Buffer
		if err := res.JSON(&buf); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refJSON = res, buf.Bytes()
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Fatalf("workers=%d: result differs from workers=%d", w, counts[0])
		}
		if !bytes.Equal(refJSON, buf.Bytes()) {
			t.Fatalf("workers=%d: JSON differs from workers=%d", w, counts[0])
		}
	}
}

// TestReplicationPoolRace hammers the pool under the race detector:
// many concurrent small studies sharing nothing, each internally
// fanning replications across its own workers.
func TestReplicationPoolRace(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := Config{
				Seeds:    3,
				BaseSeed: int64(g),
				Engine:   EngineEvent,
				Workers:  3,
				Points: []PointConfig{
					{Topology: "mesh2d-4x4", Streams: 6, PLevels: 2, Arbiter: sim.Preemptive, Cycles: 1500, Warmup: 50},
				},
			}
			if _, err := Run(cfg); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
}
