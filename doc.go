// Package repro is a full reproduction of "A Real-Time Communication
// Method for Wormhole Switching Networks" (Kim, Kim, Hong, Lee —
// ICPP 1998): a delay-upper-bound analysis for prioritised periodic
// message streams over flit-level preemptive wormhole switching, a
// cycle-accurate flit-level network simulator to validate it, and a
// benchmark harness that regenerates every table and figure of the
// paper's evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results. The root-level
// benchmarks (bench_test.go) are the entry point for regenerating the
// evaluation: go test -bench=. -benchmem.
package repro
