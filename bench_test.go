package repro

import (
	"fmt"
	"testing"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/exp"
	"repro/internal/explore"
	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
	"repro/internal/mc"
	"repro/internal/place"
	"repro/internal/routing"
	"repro/internal/sched"
	"repro/internal/shiburns"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ----- Tables 1-5 (paper §5) ------------------------------------------
//
// Each benchmark regenerates one evaluation table: generate the random
// workload, compute every delay upper bound, simulate 30000 flit times
// under flit-level preemption, and aggregate the per-priority-level
// ratio between actual latency and bound. The headline ratios are
// attached as custom metrics (top/U and bottom/U).

func benchTable(b *testing.B, n int) {
	spec, err := exp.PaperTable(n)
	if err != nil {
		b.Fatal(err)
	}
	spec.Trials = 1
	var res *exp.TableResult
	for i := 0; i < b.N; i++ {
		spec.Seed = int64(1000 + n + i) // fresh workload per iteration
		if res, err = exp.RunTable(spec); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.TopRatio(), "top-ratio")
	b.ReportMetric(res.BottomRatio(), "bottom-ratio")
	if b.N == 1 {
		b.Log("\n" + res.Format())
	}
}

func BenchmarkTable1(b *testing.B) { benchTable(b, 1) }
func BenchmarkTable2(b *testing.B) { benchTable(b, 2) }
func BenchmarkTable3(b *testing.B) { benchTable(b, 3) }
func BenchmarkTable4(b *testing.B) { benchTable(b, 4) }
func BenchmarkTable5(b *testing.B) { benchTable(b, 5) }

// BenchmarkPriorityLevelRule reproduces the paper's closing observation
// of §5: at least |M|/4 priority levels are needed before the
// highest-priority ratio exceeds 0.9 (run at a reduced size so that one
// iteration stays affordable; cmd/tables -rule runs the full sweep).
func BenchmarkPriorityLevelRule(b *testing.B) {
	var res *exp.RuleSweepResult
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = exp.RunRuleSweep(20, 0.9, 8, 42, 15000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.MinLevels), "min-levels")
	if b.N == 1 {
		b.Log("\n" + res.Format())
	}
}

// ----- Figures ---------------------------------------------------------

// BenchmarkFigure2PriorityInversion regenerates the Figure 2
// demonstration: the worst high-priority latency without and with
// flit-level preemption.
func BenchmarkFigure2PriorityInversion(b *testing.B) {
	var rep *exp.FigureReport
	var err error
	for i := 0; i < b.N; i++ {
		if rep, err = exp.Figure2(10000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Values["nonpreemptiveMax"]), "nonpreemptive-max")
	b.ReportMetric(float64(rep.Values["preemptiveMax"]), "preemptive-max")
	if b.N == 1 {
		b.Log("\n" + rep.Body)
	}
}

// BenchmarkFigure4 regenerates the direct-blocking U calculation
// (expected U = 26).
func BenchmarkFigure4(b *testing.B) {
	var rep *exp.FigureReport
	var err error
	for i := 0; i < b.N; i++ {
		if rep, err = exp.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Values["U"]), "U")
}

// BenchmarkFigure6 regenerates the indirect-blocking U calculation
// (expected U = 22).
func BenchmarkFigure6(b *testing.B) {
	var rep *exp.FigureReport
	var err error
	for i := 0; i < b.N; i++ {
		if rep, err = exp.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Values["U"]), "U")
}

// BenchmarkWorkedExample regenerates the full §4.4 pipeline (Figures 3,
// 7, 8 and 9): HP sets, BDG, initial and final timing diagrams and all
// five bounds (U = 7, 8, 26, 30, 33).
func BenchmarkWorkedExample(b *testing.B) {
	var rep *exp.FigureReport
	var err error
	for i := 0; i < b.N; i++ {
		if rep, err = exp.WorkedExample(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Values["U4"]), "U4")
	if b.N == 1 {
		b.Log("\n" + rep.Body)
	}
}

// ----- Ablations --------------------------------------------------------

// BenchmarkAblationRMBaseline compares the paper's bound with the naive
// rate-monotonic response-time bound (Mutka-style) that ignores
// indirect blocking, on the same generated workload. The reported
// metric is how many streams the RM analysis bounds more optimistically
// than the paper's algorithm — each one a potential missed deadline.
func BenchmarkAblationRMBaseline(b *testing.B) {
	optimistic := 0
	for i := 0; i < b.N; i++ {
		set, analyzer, err := workload.Generate(workload.PaperDefaults(20, 4, int64(300+i)))
		if err != nil {
			b.Fatal(err)
		}
		optimistic = 0
		for _, s := range set.Streams {
			paper, err := analyzer.CalUSearchCap(s.ID, 1<<16)
			if err != nil {
				b.Fatal(err)
			}
			rm, err := sched.ResponseTimeBound(set, s.ID, 1<<16)
			if err != nil {
				b.Fatal(err)
			}
			if rm >= 0 && (paper < 0 || rm < paper) {
				optimistic++
			}
		}
	}
	b.ReportMetric(float64(optimistic), "rm-optimistic-streams")
}

// BenchmarkArbiters runs the same 20-stream workload under all four
// switching disciplines and reports the worst observed latency of the
// highest-priority level — the cost of giving up preemption.
func BenchmarkArbiters(b *testing.B) {
	set, _, err := workload.Generate(workload.PaperDefaults(20, 4, 4242))
	if err != nil {
		b.Fatal(err)
	}
	topPrio := 0
	for _, s := range set.Streams {
		if s.Priority > topPrio {
			topPrio = s.Priority
		}
	}
	for _, kind := range []sim.ArbiterKind{sim.Preemptive, sim.Li, sim.NonPreemptivePriority, sim.NonPreemptiveFIFO} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			worst := 0
			for i := 0; i < b.N; i++ {
				s, err := sim.New(set, sim.Config{Cycles: 30000, Warmup: 200, Arbiter: kind})
				if err != nil {
					b.Fatal(err)
				}
				res := s.Run()
				worst = 0
				for j, st := range res.PerStream {
					if set.Get(stream.ID(j)).Priority == topPrio && st.MaxLatency > worst {
						worst = st.MaxLatency
					}
				}
			}
			b.ReportMetric(float64(worst), "top-prio-max-latency")
		})
	}
}

// BenchmarkAblationBufferDepth measures the effect of per-VC buffer
// depth on mean latency (depth 1 halves the worm's throughput; depth 2
// sustains the full pipeline — the analysis assumes full throughput).
func BenchmarkAblationBufferDepth(b *testing.B) {
	set, _, err := workload.Generate(workload.PaperDefaults(20, 4, 777))
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{1, 2, 4} {
		depth := depth
		b.Run(benchName("depth", depth), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				s, err := sim.New(set, sim.Config{Cycles: 20000, Warmup: 200, BufferDepth: depth})
				if err != nil {
					b.Fatal(err)
				}
				res := s.Run()
				sum, n := 0.0, 0
				for _, st := range res.PerStream {
					if st.Observed > 0 {
						sum += st.Mean()
						n++
					}
				}
				mean = sum / float64(n)
			}
			b.ReportMetric(mean, "mean-latency")
		})
	}
}

// BenchmarkAblationStrictArbitration compares the work-conserving
// arbitration (default) against the paper's literal rule in which a VC
// transmits only when every higher-priority VC is unoccupied.
func BenchmarkAblationStrictArbitration(b *testing.B) {
	set, _, err := workload.Generate(workload.PaperDefaults(20, 4, 888))
	if err != nil {
		b.Fatal(err)
	}
	for _, strict := range []bool{false, true} {
		strict := strict
		name := "work-conserving"
		if strict {
			name = "strict"
		}
		b.Run(name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				s, err := sim.New(set, sim.Config{Cycles: 20000, Warmup: 200, StrictPhysicalPriority: strict})
				if err != nil {
					b.Fatal(err)
				}
				res := s.Run()
				sum, n := 0.0, 0
				for _, st := range res.PerStream {
					if st.Observed > 0 {
						sum += st.Mean()
						n++
					}
				}
				mean = sum / float64(n)
			}
			b.ReportMetric(mean, "mean-latency")
		})
	}
}

// BenchmarkAblationPlacement evaluates the job-allocation extension
// (the problem §2 of the paper defers): random versus greedy+annealed
// placement of three heavy pipelines, scored by the number of streams
// whose delay bound fits the deadline.
func BenchmarkAblationPlacement(b *testing.B) {
	// 12 tasks on 16 nodes: random placements collide often.
	m := topology.NewMesh2D(4, 4)
	r := routing.NewXY(m)
	p := place.Problem{Tasks: 12}
	for _, base := range []int{0, 4, 8} {
		for i := 0; i < 3; i++ {
			p.Demands = append(p.Demands, place.Demand{
				From: place.Task(base + i), To: place.Task(base + i + 1),
				Priority: 1 + base/4, Period: 40, Length: 16, Deadline: 30,
			})
		}
	}
	feasible := func(a place.Assignment) int {
		set, err := p.Build(m, r, a)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := core.DetermineFeasibility(set)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, v := range rep.Verdicts {
			if v.Feasible {
				n++
			}
		}
		return n
	}
	var randOK float64
	var placedOK int
	for i := 0; i < b.N; i++ {
		sum := 0
		const seeds = 5
		for s := int64(0); s < seeds; s++ {
			ra, err := place.Random(p, m, int64(i)*seeds+s)
			if err != nil {
				b.Fatal(err)
			}
			sum += feasible(ra)
		}
		randOK = float64(sum) / seeds
		g, err := place.Greedy(p, m, r)
		if err != nil {
			b.Fatal(err)
		}
		refined, err := place.Anneal(p, m, r, g, place.AnnealConfig{Seed: int64(i), Iterations: 2000})
		if err != nil {
			b.Fatal(err)
		}
		placedOK = feasible(refined)
	}
	b.ReportMetric(randOK, "random-feasible-streams")
	b.ReportMetric(float64(placedOK), "placed-feasible-streams")
}

// BenchmarkAblationShiBurns compares the paper's diagram bound against
// the Shi-Burns (NOCS 2008) jitter-augmented response-time analysis on
// distinct-priority workloads. Each iteration aggregates the SAME ten
// fixed seeds, so the reported mean bounds (lower = tighter) are
// stable regardless of b.N. Neither analysis dominates; see
// EXPERIMENTS.md.
func BenchmarkAblationShiBurns(b *testing.B) {
	var meanPaper, meanSB float64
	for i := 0; i < b.N; i++ {
		sumP, sumS, n := 0.0, 0.0, 0
		for seed := int64(900); seed < 910; seed++ {
			cfg := workload.PaperDefaults(20, 20, seed)
			cfg.InflatePeriods = false
			set, analyzer, err := workload.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			sb, err := shiburns.Analyze(set, 1<<16)
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range set.Streams {
				u, err := analyzer.CalUSearchCap(s.ID, 1<<16)
				if err != nil {
					b.Fatal(err)
				}
				if u < 0 || sb.R[s.ID] < 0 {
					continue
				}
				sumP += float64(u)
				sumS += float64(sb.R[s.ID])
				n++
			}
		}
		if n > 0 {
			meanPaper = sumP / float64(n)
			meanSB = sumS / float64(n)
		}
	}
	b.ReportMetric(meanPaper, "mean-paper-bound")
	b.ReportMetric(meanSB, "mean-shiburns-bound")
}

// BenchmarkLoadSweep produces the latency-vs-load saturation curves for
// the preemptive scheme and classic wormhole switching (mean latency at
// period scales 2.0 / 1.0 / 0.5). Near saturation, the top priority's
// latency stays flat only under flit-level preemption.
func BenchmarkLoadSweep(b *testing.B) {
	scales := []float64{2.0, 1.0, 0.5}
	for _, kind := range []sim.ArbiterKind{sim.Preemptive, sim.NonPreemptivePriority} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			var pts []exp.LoadPoint
			var err error
			for i := 0; i < b.N; i++ {
				if pts, err = exp.LoadSweep(20, 4, 99, scales, kind, 20000); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pts[len(pts)-1].MeanLat, "mean-latency-at-0.5x")
			b.ReportMetric(pts[len(pts)-1].TopMeanLat, "top-latency-at-0.5x")
		})
	}
}

// BenchmarkQuantizationSweep measures bound tightness as many logical
// priorities are squeezed onto few virtual channels (the paper's
// "difficult to have too many virtual channels" constraint).
func BenchmarkQuantizationSweep(b *testing.B) {
	var pts []exp.QuantizationPoint
	var err error
	for i := 0; i < b.N; i++ {
		if pts, err = exp.QuantizationSweep(20, []int{1, 2, 4, 8}, 7, 15000); err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.TopRatio, fmt.Sprintf("top-ratio-%dvc", p.VCs))
	}
}

// BenchmarkAblationRouterLatency sweeps the per-hop router pipeline
// depth: analysis and simulator grow together (reported as the mean
// bound and mean measured latency at each depth).
func BenchmarkAblationRouterLatency(b *testing.B) {
	var pts []exp.RouterLatencyPoint
	var err error
	for i := 0; i < b.N; i++ {
		if pts, err = exp.RouterLatencySweep(15, 15, 21, []int{0, 1, 3}, 15000); err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.MeanU, fmt.Sprintf("mean-U-r%d", p.R))
		b.ReportMetric(p.MeanActual, fmt.Sprintf("mean-actual-r%d", p.R))
	}
}

// ----- Microbenchmarks ---------------------------------------------------

// BenchmarkHPSetConstruction measures Generate_HP over a 60-stream set.
func BenchmarkHPSetConstruction(b *testing.B) {
	cfg := workload.PaperDefaults(60, 15, 123)
	cfg.InflatePeriods = false
	set, _, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.BuildHPSets(set)
	}
}

// BenchmarkCalU measures one Cal_U run (HP_4 of the worked example).
func BenchmarkCalU(b *testing.B) {
	set, err := exp.WorkedExampleSet()
	if err != nil {
		b.Fatal(err)
	}
	a, err := core.NewAnalyzer(set)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.CalU(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures raw simulation throughput: cycles per
// second on the paper's Table 3 workload.
func BenchmarkSimulator(b *testing.B) {
	set, _, err := workload.Generate(workload.PaperDefaults(20, 4, 555))
	if err != nil {
		b.Fatal(err)
	}
	const cycles = 30000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(set, sim.Config{Cycles: cycles, Warmup: 200})
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
	}
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkEventSim is BenchmarkSimulator on the event-driven engine:
// same workload, same horizon, same metric, so the cycles/s ratio
// between the two entries in BENCH_core.json is the engine speedup.
// The differential battery in internal/eventsim pins the two engines'
// results byte-identical on this exact workload.
func BenchmarkEventSim(b *testing.B) {
	set, _, err := workload.Generate(workload.PaperDefaults(20, 4, 555))
	if err != nil {
		b.Fatal(err)
	}
	const cycles = 30000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := eventsim.New(set, sim.Config{Cycles: cycles, Warmup: 200})
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
	}
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkMCReplications measures Monte-Carlo study throughput: 8
// replications of the §5 pool shape fanned over the worker pool with
// the event engine, reported as replications per second.
func BenchmarkMCReplications(b *testing.B) {
	cfg := mc.Config{
		Seeds:    8,
		BaseSeed: 555,
		Engine:   mc.EngineEvent,
		Points: []mc.PointConfig{
			{Topology: "mesh2d-10x10", Streams: 20, PLevels: 4, Arbiter: sim.Preemptive, Cycles: 30000, Warmup: 200},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.Seeds)*float64(b.N)/b.Elapsed().Seconds(), "replications/s")
}

func benchName(prefix string, v int) string {
	return prefix + "-" + string(rune('0'+v))
}

// ----- Online admission (internal/admit) ---------------------------------
//
// The pair below measures the value of incremental recomputation: one
// stream churns (withdraw + re-admit) against a standing 50-stream
// paper workload on the 10×10 mesh. The Incremental variant recomputes
// only the HP-set dependents of the churned stream; the Full variant
// (Config.FullRecompute) re-derives every bound, which is exactly the
// offline Determine-Feasibility cost. Same controller, same code path,
// same verdicts — the only difference is the dirty set.

func admitBenchSetup(b *testing.B, full bool) (*admit.Controller, []admit.Spec, []admit.Handle) {
	b.Helper()
	// Seed 13 yields a workload where every stream stays feasible, so
	// the churn below never trips a rejection.
	set, _, err := workload.Generate(workload.PaperDefaults(50, 15, 13))
	if err != nil {
		b.Fatal(err)
	}
	specs := make([]admit.Spec, set.Len())
	for i, s := range set.Streams {
		specs[i] = admit.Spec{
			Src: s.Src, Dst: s.Dst,
			Priority: s.Priority, Period: s.Period,
			Length: s.Length, Deadline: s.Deadline,
		}
	}
	c, err := admit.New(set.Topology, admit.Config{FullRecompute: full})
	if err != nil {
		b.Fatal(err)
	}
	res, err := c.AdmitBatch(specs)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Admitted {
		b.Fatalf("benchmark workload infeasible: %s", res.Rejection)
	}
	return c, specs, res.Handles
}

func benchAdmitChurn(b *testing.B, full bool) {
	c, specs, _ := admitBenchSetup(b, full)
	recomputed := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Probe-admit a clone of stream k against the standing 50: the
		// feasibility work runs in full either way. Only the admit is
		// on the clock — the withdraw below merely restores the state
		// for the next iteration (an accepted probe is always the last
		// stream, so removing it recreates the baseline exactly) and
		// would otherwise dominate both variants identically.
		k := i % len(specs)
		res, err := c.Admit(specs[k])
		if err != nil {
			b.Fatal(err)
		}
		recomputed += res.Recomputed
		if res.Admitted {
			b.StopTimer()
			if _, err := c.Withdraw(res.Handles[0]); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(recomputed)/float64(b.N), "recomputed/op")
}

// BenchmarkAdmitIncremental: one single-stream admit per iteration,
// recomputing only the dirty bounds.
func BenchmarkAdmitIncremental(b *testing.B) { benchAdmitChurn(b, false) }

// BenchmarkAdmitFull: the same churn with FullRecompute — the cost an
// admission controller would pay without dirty-set invalidation.
func BenchmarkAdmitFull(b *testing.B) { benchAdmitChurn(b, true) }

// ----- Design-space explorer ------------------------------------------

// benchExploreSweep scores a fixed grid (two topologies × three VC
// ladders × two buffer depths) against a 12-stream §5 pool, reporting
// configuration points evaluated per second. The validated variant
// additionally replays every fully-admitting point through the
// flit-level simulator — the cost of turning an analysis verdict into
// a sim-backed one.
func benchExploreSweep(b *testing.B, validate bool) {
	w, err := explore.PaperPool(12, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	sp := explore.Space{
		Topologies: []string{"mesh2d-10x10", "ring-16"},
		Routings:   []string{explore.RoutingCanonical},
		VCs:        []int{1, 2, 4},
		Buffers:    []int{1, 2},
		Policies:   []string{explore.PolicyWorkload},
	}
	var points int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := explore.Sweep(w, sp, explore.SweepConfig{
			Seed: 1, Eval: explore.EvalConfig{Validate: validate, ValidateCycles: 2000},
		})
		if err != nil {
			b.Fatal(err)
		}
		points += len(res.Points)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(points)/sec, "points/s")
	}
}

func BenchmarkExploreSweep(b *testing.B) {
	b.Run("analysis", func(b *testing.B) { benchExploreSweep(b, false) })
	b.Run("validated", func(b *testing.B) { benchExploreSweep(b, true) })
}

// ----- rtwlint ---------------------------------------------------------

// BenchmarkLintRepo times one full rtwlint pass — all four tiers,
// including the value-range analyzers — over every package of the
// module. Loading and type-checking happen once outside the loop; each
// iteration rebuilds the module context (call graph, summaries,
// interval fixpoints) from scratch, which is what a cold CI run pays.
func BenchmarkLintRepo(b *testing.B) {
	pkgs, err := loader.Load("", "./...")
	if err != nil {
		b.Fatal(err)
	}
	analyzers := lint.Analyzers()
	b.ResetTimer()
	findings := 0
	for i := 0; i < b.N; i++ {
		mod := analysis.NewModule(pkgs)
		findings = 0
		for _, pkg := range pkgs {
			diags, err := analysis.RunInModule(pkg, mod, analyzers)
			if err != nil {
				b.Fatal(err)
			}
			findings += len(diags)
		}
	}
	b.ReportMetric(float64(findings), "findings")
	b.ReportMetric(float64(len(pkgs)), "packages")
}
