// Fault recovery: a physical channel dies under a running real-time
// configuration. The host re-routes every stream that crossed the dead
// channel around the fault (breadth-first detours) and re-runs the
// paper's feasibility test on the recovered configuration — the static
// counterpart of the fault-tolerant real-time channels in the paper's
// related work. The example shows a fault the contract survives, then a
// second fault that concentrates traffic until a deadline breaks, and
// uses the interference report to explain which stream is responsible.
//
// Run with: go run ./examples/faultrecovery
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/stream"
	"repro/internal/topology"
)

func main() {
	mesh := topology.NewMesh2D(6, 3)
	router := routing.NewXY(mesh)
	set := stream.NewSet(mesh)
	names := []string{"control", "lidar", "telemetry"}
	add := func(sx, sy, dx, dy, p, t, c, d int) {
		if _, err := set.Add(router, mesh.ID(sx, sy), mesh.ID(dx, dy), p, t, c, d); err != nil {
			log.Fatal(err)
		}
	}
	add(0, 0, 5, 0, 3, 40, 6, 24)   // control on row 0, tight deadline
	add(0, 1, 5, 1, 4, 60, 20, 120) // lidar frames on row 1: safety-critical, highest priority
	add(0, 2, 5, 2, 1, 80, 12, 160) // telemetry on row 2

	report, err := core.DetermineFeasibility(set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy network: feasible=%v (rows carry one stream each)\n\n", report.Feasible)

	// Fault 1: a telemetry-row channel dies. The detour shifts
	// telemetry one row — it only meets the lidar row, and everything
	// still fits.
	f1 := map[topology.Channel]bool{
		{From: mesh.ID(2, 2), To: mesh.ID(3, 2)}: true,
	}
	rec1, err := fault.Recover(set, f1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault 1: channel (2,2)->(3,2) dead\n  %s\n", rec1.Summary())
	for _, id := range rec1.Rerouted {
		fmt.Printf("  %s re-routed, now %d hops (was %d)\n",
			names[id], rec1.Recovered.Get(id).Path.Hops(), set.Get(id).Path.Hops())
	}

	// Fault 2: on the already-recovered network, a lidar-row channel
	// dies too; the 20-flit lidar worm detours onto the control row and
	// the 24-flit-time control deadline no longer holds.
	f2 := map[topology.Channel]bool{
		{From: mesh.ID(2, 1), To: mesh.ID(3, 1)}: true,
	}
	rec2, err := fault.Recover(rec1.Recovered, f2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfault 2: channel (2,1)->(3,1) dead as well\n  %s\n", rec2.Summary())
	for _, v := range rec2.After.Verdicts {
		status := "ok"
		if !v.Feasible {
			status = "MISSES DEADLINE"
		}
		u := fmt.Sprintf("%d", v.U)
		if v.U < 0 {
			u = "unbounded"
		}
		fmt.Printf("  %-10s U=%-9s deadline %-4d %s\n", names[v.ID], u, v.Deadline, status)
	}

	if rec2.Survives() {
		log.Fatal("expected the second fault to break the contract")
	}
	// Diagnose the broken stream.
	analyzer, err := core.NewAnalyzer(rec2.Recovered)
	if err != nil {
		log.Fatal(err)
	}
	window := set.Get(0).Deadline
	if window < 1 {
		window = 1
	}
	if window > core.MaxSearchHorizon {
		window = core.MaxSearchHorizon
	}
	interf, err := analyzer.Interference(0, 4*window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwhy the control stream broke:")
	fmt.Print(interf.Format())
	fmt.Println("-> the detoured lidar worm now outweighs the control slack;")
	fmt.Println("   the host must demote lidar, shrink its frames, or reject the fault state")
}
