// Avionics: an integrated modular avionics workload on a 4x4 mesh
// multicomputer — the class of hard real-time application the paper's
// introduction motivates. Flight-control loops, navigation updates,
// engine monitoring and a maintenance data dump share the wormhole
// interconnect; the host processor must guarantee every control
// deadline before the configuration is accepted.
//
// The example shows the full admission workflow: feasibility testing,
// reading the blocking structure of a rejected configuration, fixing it
// by re-prioritising, and verifying the accepted configuration against
// the flit-level simulator.
//
// Run with: go run ./examples/avionics
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/topology"
)

type flow struct {
	name     string
	src, dst [2]int
	priority int
	period   int // T: sampling period of the loop, flit times
	length   int // C: message size, flits
	deadline int // D: end-to-end latency budget
}

func buildSet(mesh *topology.Mesh2D, flows []flow) (*stream.Set, error) {
	router := routing.NewXY(mesh)
	set := stream.NewSet(mesh)
	for _, f := range flows {
		_, err := set.Add(router,
			mesh.ID(f.src[0], f.src[1]), mesh.ID(f.dst[0], f.dst[1]),
			f.priority, f.period, f.length, f.deadline)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.name, err)
		}
	}
	return set, nil
}

func main() {
	mesh := topology.NewMesh2D(4, 4)

	// First attempt: the integrator assigned the maintenance dump a
	// priority above the pitch-control loop ("it is only 2% of the
	// bandwidth"). Column 1 carries both.
	flows := []flow{
		{"pitch-control", [2]int{1, 0}, [2]int{1, 3}, 2, 40, 4, 20},
		{"yaw-control", [2]int{2, 0}, [2]int{2, 3}, 4, 40, 4, 20},
		{"nav-update", [2]int{0, 1}, [2]int{3, 1}, 3, 120, 16, 120},
		{"engine-monitor", [2]int{0, 2}, [2]int{3, 2}, 3, 90, 10, 90},
		{"maintenance-dump", [2]int{1, 0}, [2]int{1, 3}, 5, 200, 120, 400},
	}
	names := []string{"pitch-control", "yaw-control", "nav-update", "engine-monitor", "maintenance-dump"}

	set, err := buildSet(mesh, flows)
	if err != nil {
		log.Fatal(err)
	}
	report, err := core.DetermineFeasibility(set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("attempt 1: maintenance dump prioritised above pitch control")
	printVerdicts(set, report, names)

	if report.Feasible {
		log.Fatal("expected the first configuration to be rejected")
	}
	// Diagnose: whose interference breaks pitch-control?
	analyzer, err := core.NewAnalyzer(set)
	if err != nil {
		log.Fatal(err)
	}
	hp, err := analyzer.HP(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nblocking structure of pitch-control: %s\n", hp.String())
	fmt.Println("-> the 120-flit maintenance worm outranks the 20-flit-deadline control loop")

	// Fix: control loops get the top priorities; the dump is demoted to
	// background.
	flows[0].priority = 5 // pitch-control
	flows[4].priority = 1 // maintenance-dump
	set, err = buildSet(mesh, flows)
	if err != nil {
		log.Fatal(err)
	}
	report, err = core.DetermineFeasibility(set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nattempt 2: control loops on top, dump demoted to background")
	printVerdicts(set, report, names)
	if !report.Feasible {
		log.Fatal("expected the fixed configuration to be accepted")
	}

	// Verify the accepted configuration end to end.
	simulator, err := sim.New(set, sim.Config{Cycles: 40000, Warmup: 200})
	if err != nil {
		log.Fatal(err)
	}
	res := simulator.Run()
	fmt.Println("\n40000 flit times of flit-level preemptive simulation:")
	worst := 0.0
	for i, st := range res.PerStream {
		u := report.Verdicts[i].U
		ratio := float64(st.MaxLatency) / float64(u)
		if ratio > worst {
			worst = ratio
		}
		fmt.Printf("  %-17s mean %6.1f  max %4d  bound %4d  deadline %4d  misses %d\n",
			names[i], st.Mean(), st.MaxLatency, u, set.Get(stream.ID(i)).Deadline, st.Misses)
	}
	fmt.Printf("worst max/bound ratio: %.2f — every flow inside its guarantee\n", worst)
}

func printVerdicts(set *stream.Set, report *core.Report, names []string) {
	for _, v := range report.Verdicts {
		u := fmt.Sprintf("%d", v.U)
		if v.U < 0 {
			u = "unbounded"
		}
		status := "ok"
		if !v.Feasible {
			status = "REJECTED"
		}
		fmt.Printf("  %-17s priority %d  U=%-9s deadline %-4d %s\n",
			names[v.ID], set.Get(v.ID).Priority, u, v.Deadline, status)
	}
	fmt.Printf("  feasible: %v\n", report.Feasible)
}
