// Factory cell: a robotic work-cell controller in which an
// emergency-stop channel shares the interconnect with vision frames and
// conveyor telemetry. The example demonstrates the paper's core
// motivation (priority inversion, Figure 2): with classic
// non-preemptive wormhole switching the e-stop message can sit behind a
// blocked vision worm for hundreds of flit times, while the paper's
// flit-level preemptive scheme keeps it at its unloaded network
// latency — and the analysis predicts that latency exactly.
//
// Run with: go run ./examples/factorycell
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/topology"
)

func main() {
	mesh := topology.NewMesh2D(5, 3)
	router := routing.NewXY(mesh)
	set := stream.NewSet(mesh)
	names := []string{"conveyor-telemetry", "vision-frames", "e-stop"}

	add := func(sx, sy, dx, dy, prio, period, length, deadline int) {
		if _, err := set.Add(router, mesh.ID(sx, sy), mesh.ID(dx, dy), prio, period, length, deadline); err != nil {
			log.Fatal(err)
		}
	}
	// Conveyor telemetry saturates the column the vision worm must
	// enter, so vision frames regularly stall mid-path...
	add(2, 0, 2, 2, 2, 30, 24, 120)
	// ...while the 60-flit vision worm crosses row 0 and then the
	// congested column — when it stalls, it keeps holding row 0.
	add(0, 0, 2, 2, 1, 150, 60, 600)
	// The e-stop is tiny and urgent: one hop on row 0, 25-flit-time
	// deadline.
	add(0, 0, 1, 0, 3, 50, 2, 25)

	// The analysis promises the e-stop its unloaded latency under
	// preemptive switching.
	report, err := core.DetermineFeasibility(set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("admission analysis (flit-level preemptive wormhole):")
	for _, v := range report.Verdicts {
		fmt.Printf("  %-20s U=%-4d deadline %-4d feasible=%v\n", names[v.ID], v.U, v.Deadline, v.Feasible)
	}

	// Simulate both switching disciplines. The e-stop first fires at
	// t=5, after the vision worm has acquired row 0.
	offsets := []int{0, 0, 5}
	run := func(kind sim.ArbiterKind) *sim.Result {
		s, err := sim.New(set, sim.Config{Cycles: 30000, Warmup: 0, Arbiter: kind, Offsets: offsets})
		if err != nil {
			log.Fatal(err)
		}
		return s.Run()
	}
	non := run(sim.NonPreemptivePriority)
	pre := run(sim.Preemptive)

	fmt.Println("\n30000 flit times, e-stop channel:")
	fmt.Printf("  %-34s max %4d  mean %6.1f  deadline misses %d/%d\n",
		"classic wormhole (non-preemptive):",
		non.PerStream[2].MaxLatency, non.PerStream[2].Mean(), non.PerStream[2].Misses, non.PerStream[2].Observed)
	fmt.Printf("  %-34s max %4d  mean %6.1f  deadline misses %d/%d\n",
		"flit-level preemptive (paper):",
		pre.PerStream[2].MaxLatency, pre.PerStream[2].Mean(), pre.PerStream[2].Misses, pre.PerStream[2].Observed)

	u := report.Verdicts[2].U
	if pre.PerStream[2].MaxLatency > u {
		log.Fatalf("preemptive e-stop latency %d exceeded its bound %d", pre.PerStream[2].MaxLatency, u)
	}
	fmt.Printf("\nthe preemptive maximum (%d) stays within the analytical bound (%d);\n", pre.PerStream[2].MaxLatency, u)
	fmt.Printf("the non-preemptive maximum (%d) shows the Figure-2 priority inversion.\n", non.PerStream[2].MaxLatency)
}
