// Admission control: the host processor of the paper's system model
// (Figure 1) manages a 6x6 mesh multicomputer, admitting real-time
// jobs one at a time. Each job is a task graph; admission places its
// tasks on free nodes, merges its message streams with the running
// traffic, and applies the paper's feasibility test — the job starts
// only if every delay bound (old and new) stays within its deadline.
//
// The example admits a mixed workload until the machine fills up, shows
// a rejection that leaves the running system untouched, and frees
// capacity by removing a job.
//
// Run with: go run ./examples/admission
package main

import (
	"fmt"
	"log"

	"repro/internal/jobs"
	"repro/internal/place"
	"repro/internal/topology"
)

// job builds a named task graph: a pipeline plus a control backchannel
// from the last stage to the first.
func job(name string, stages, prio, period, length, deadline int) jobs.Job {
	// The demo builds jobs from literal periods; the clamp documents
	// the valid range and keeps the wrap-around demand's period*2
	// provably inside int64.
	if period < 1 {
		period = 1
	}
	if period > 1<<20 {
		period = 1 << 20
	}
	j := jobs.Job{Name: name, Graph: place.Problem{Tasks: stages}}
	for i := 0; i < stages-1; i++ {
		j.Graph.Demands = append(j.Graph.Demands, place.Demand{
			From: place.Task(i), To: place.Task(i + 1),
			Priority: prio, Period: period, Length: length, Deadline: deadline,
		})
	}
	j.Graph.Demands = append(j.Graph.Demands, place.Demand{
		From: place.Task(stages - 1), To: place.Task(0),
		Priority: prio + 1, Period: period * 2, Length: 2, Deadline: period,
	})
	return j
}

func main() {
	ctl, err := jobs.NewController(topology.NewMesh2D(6, 6))
	if err != nil {
		log.Fatal(err)
	}

	queue := []jobs.Job{
		job("radar-track", 6, 4, 50, 8, 40),
		job("video-feed", 8, 2, 80, 24, 160),
		job("telemetry", 4, 3, 60, 6, 60),
		job("diagnostics", 6, 1, 120, 16, 240),
		job("map-overlay", 8, 2, 90, 20, 200),
		// Impossible: 30-flit messages against a 20-flit-time deadline.
		job("greedy-burst", 4, 5, 40, 30, 20),
		job("audio", 4, 3, 70, 4, 70),
	}
	for _, j := range queue {
		v, err := ctl.Admit(j)
		if err != nil {
			log.Fatal(err)
		}
		if v.Admitted {
			fmt.Printf("ADMIT  %-14s %2d tasks placed, %2d nodes left\n",
				j.Name, j.Graph.Tasks, v.FreeAfter)
		} else {
			fmt.Printf("REJECT %-14s (%s)\n", j.Name, v.Reason)
		}
		rep, err := ctl.Report()
		if err != nil {
			log.Fatal(err)
		}
		if !rep.Feasible {
			log.Fatalf("running system became infeasible after %s", j.Name)
		}
	}

	fmt.Println()
	fmt.Print(ctl.Utilization())

	// Free capacity and retry the audio job if it was rejected for
	// space.
	if err := ctl.Remove("video-feed"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nremoved video-feed; %d nodes free\n", len(ctl.FreeNodes()))
	v, err := ctl.Admit(job("audio-hd", 6, 3, 70, 8, 70))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("late arrival audio-hd admitted: %v\n", v.Admitted)

	set, owners, err := ctl.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := ctl.Report()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal system: %d streams across %d jobs, feasible=%v\n",
		set.Len(), len(ctl.Jobs()), rep.Feasible)
	for i, v := range rep.Verdicts {
		fmt.Printf("  %-14s stream %-2d U=%-4d D=%-4d\n", owners[i], i, v.U, v.Deadline)
	}
}
