// Capacity planning: how many random real-time streams can a 10x10
// mesh admit before the feasibility test starts rejecting, and how does
// the number of priority levels (virtual channels per link) move that
// admission curve? This is the system-design question behind the
// paper's Tables 1-5: priority levels are a hardware cost, and the
// experiment shows what each extra level buys.
//
// Run with: go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stream"
	"repro/internal/workload"
)

func main() {
	fmt.Println("admitted streams whose delay bound fits the deadline (10x10 mesh, C~U[1,40], T~U[40,90])")
	fmt.Printf("%-10s", "levels")
	sizes := []int{10, 20, 30, 40, 50, 60}
	for _, n := range sizes {
		fmt.Printf(" |M|=%-4d", n)
	}
	fmt.Println()

	for _, levels := range []int{1, 2, 4, 8, 15} {
		fmt.Printf("%-10d", levels)
		for _, n := range sizes {
			fmt.Printf(" %-8s", admitted(n, levels))
		}
		fmt.Println()
	}

	// A closer look at one operating point: which streams are rejected
	// and how loaded the hottest channel is.
	set, analyzer, err := workload.Generate(noInflate(40, 4, 7))
	if err != nil {
		log.Fatal(err)
	}
	ok, rejected := admit(set, analyzer)
	fmt.Printf("\noperating point |M|=40, 4 levels: %d admitted, %d rejected, max link utilisation %.2f\n",
		ok, rejected, sched.MaxLinkUtilization(set))
	fmt.Println("(rejection means U > T under the original periods: the stream would need a")
	fmt.Println(" longer period, a shorter message, or a higher priority level to be admitted)")
}

// noInflate disables the paper's period-inflation rule: for capacity
// planning we want to see which streams the test would reject at their
// requested rates.
func noInflate(streams, levels int, seed int64) workload.Config {
	cfg := workload.PaperDefaults(streams, levels, seed)
	cfg.InflatePeriods = false
	return cfg
}

func admit(set *stream.Set, analyzer *core.Analyzer) (ok, rejected int) {
	for _, s := range set.Streams {
		u, err := analyzer.CalUSearchCap(s.ID, 1<<15)
		if err != nil {
			log.Fatal(err)
		}
		if u > 0 && u <= s.Deadline {
			ok++
		} else {
			rejected++
		}
	}
	return ok, rejected
}

func admitted(streams, levels int) string {
	total := 0
	const trials = 3
	for t := int64(0); t < trials; t++ {
		set, analyzer, err := workload.Generate(noInflate(streams, levels, 100+t))
		if err != nil {
			log.Fatal(err)
		}
		ok, _ := admit(set, analyzer)
		total += ok
	}
	return fmt.Sprintf("%.1f", float64(total)/trials)
}
