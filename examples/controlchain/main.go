// Control chain: an end-to-end guarantee for a distributed control
// loop — the problem the paper's introduction opens with: cooperating
// tasks on different nodes whose deadlines depend on message delays.
// The sensor task samples, ships a frame across the wormhole mesh to
// the fusion task, which ships a command to the actuator task. The
// chain's deadline covers computation AND communication; package e2e
// composes per-node fixed-priority response times with the paper's
// stream delay bounds.
//
// Run with: go run ./examples/controlchain
package main

import (
	"fmt"
	"log"

	"repro/internal/e2e"
	"repro/internal/routing"
	"repro/internal/stream"
	"repro/internal/topology"
)

func main() {
	mesh := topology.NewMesh2D(5, 3)
	router := routing.NewXY(mesh)
	set := stream.NewSet(mesh)

	add := func(sx, sy, dx, dy, p, t, c int) stream.ID {
		s, err := set.Add(router, mesh.ID(sx, sy), mesh.ID(dx, dy), p, t, c, 0)
		if err != nil {
			log.Fatal(err)
		}
		return s.ID
	}
	// The control loop's two hops...
	frames := add(0, 0, 2, 1, 3, 60, 8) // sensor -> fusion
	cmds := add(2, 1, 4, 2, 3, 60, 3)   // fusion -> actuator
	// ...and background traffic crossing the same region.
	add(0, 1, 4, 1, 2, 90, 20) // camera feed, lower priority
	add(2, 0, 2, 2, 4, 45, 5)  // radio keep-alive, higher priority

	sys := &e2e.System{
		Tasks: []e2e.Task{
			{Name: "sense", Node: mesh.ID(0, 0), WCET: 6, Period: 60, Priority: 2},
			{Name: "fuse", Node: mesh.ID(2, 1), WCET: 10, Period: 60, Priority: 2},
			{Name: "actuate", Node: mesh.ID(4, 2), WCET: 4, Period: 60, Priority: 2},
			// Competing work on the fusion node.
			{Name: "telemetry-pack", Node: mesh.ID(2, 1), WCET: 5, Period: 30, Priority: 3},
		},
		Set: set,
		Chains: []e2e.Chain{
			{Name: "control-loop", Tasks: []int{0, 1, 2}, Streams: []stream.ID{frames, cmds}, Deadline: 80},
		},
	}

	rep, err := sys.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-task response times (fixed-priority, per node):")
	for i, task := range sys.Tasks {
		fmt.Printf("  %-15s node %-2d R = %d\n", task.Name, task.Node, rep.TaskR[i])
	}
	fmt.Println("\nper-stream delay upper bounds (paper's algorithm):")
	for _, s := range set.Streams {
		fmt.Printf("  stream %d (prio %d, %d flits over %d hops): U = %d\n",
			s.ID, s.Priority, s.Length, s.Path.Hops(), rep.StreamU[s.ID])
	}
	fmt.Println()
	fmt.Print(rep.Format())

	// What happens when the fusion CPU gets busier? Tighten until the
	// chain breaks.
	fmt.Println("\nsensitivity: growing the telemetry-pack load on the fusion node")
	for wcet := 5; wcet <= 25; wcet += 5 {
		sys.Tasks[3].WCET = wcet
		rep, err := sys.Analyze()
		if err != nil {
			log.Fatal(err)
		}
		c := rep.Chains[0]
		status := "ok"
		if !c.Feasible {
			status = "BREAKS"
		}
		bound := fmt.Sprintf("%d", c.Bound)
		if c.Bound < 0 {
			bound = "unbounded"
		}
		fmt.Printf("  telemetry WCET %-3d -> chain bound %-9s (deadline %d) %s\n",
			wcet, bound, c.Deadline, status)
	}
}
