// Pipeline placement: three parallel signal-processing pipelines must
// be mapped onto a 4x4 mesh multicomputer. The paper defers this job
// allocation problem ("jobs which communicate each other frequently
// could be mapped to relatively nearby processing nodes", §2); this
// example solves it with the repository's placement extension and shows
// how much schedulability the mapping buys: the same task graph that
// fails the feasibility test under a careless placement passes it after
// greedy construction plus simulated-annealing refinement.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	mesh := topology.NewMesh2D(4, 4)
	router := routing.NewXY(mesh)

	// Three four-stage pipelines (sensor -> filter -> detect -> report),
	// each stage streaming 16-flit frames every 40 flit times with a
	// 30-flit-time hop budget.
	problem := place.Problem{Tasks: 12}
	for _, base := range []int{0, 4, 8} {
		for i := 0; i < 3; i++ {
			problem.Demands = append(problem.Demands, place.Demand{
				From: place.Task(base + i), To: place.Task(base + i + 1),
				Priority: 1 + base/4, Period: 40, Length: 16, Deadline: 30,
			})
		}
	}

	show := func(label string, a place.Assignment) bool {
		set, err := problem.Build(mesh, router, a)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := core.DetermineFeasibility(set)
		if err != nil {
			log.Fatal(err)
		}
		cost, err := problem.Cost(mesh, router, a)
		if err != nil {
			log.Fatal(err)
		}
		ok := 0
		for _, v := range rep.Verdicts {
			if v.Feasible {
				ok++
			}
		}
		fmt.Printf("%-22s cost %6.2f  feasible %d/%d streams", label, cost, ok, set.Len())
		if rep.Feasible {
			fmt.Print("  -> ACCEPTED")
		}
		fmt.Println()
		return rep.Feasible
	}

	fmt.Println("placing 3 pipelines (12 tasks, 9 streams) on a 4x4 mesh, deadline 30 flit times")
	fmt.Println()
	anyRandomOK := false
	for seed := int64(0); seed < 5; seed++ {
		a, err := place.Random(problem, mesh, seed)
		if err != nil {
			log.Fatal(err)
		}
		if show(fmt.Sprintf("random placement #%d", seed), a) {
			anyRandomOK = true
		}
	}

	greedy, err := place.Greedy(problem, mesh, router)
	if err != nil {
		log.Fatal(err)
	}
	show("greedy placement", greedy)

	refined, err := place.Anneal(problem, mesh, router, greedy, place.AnnealConfig{Seed: 11, Iterations: 4000})
	if err != nil {
		log.Fatal(err)
	}
	ok := show("greedy + annealing", refined)
	if !ok {
		log.Fatal("expected the refined placement to be feasible")
	}

	fmt.Println("\nfinal mapping (task -> mesh coordinate):")
	for task, node := range refined {
		x, y := mesh.XY(node)
		pipe := task / 4
		stage := task % 4
		fmt.Printf("  pipeline %d stage %d -> (%d,%d)\n", pipe, stage, x, y)
	}
	if !anyRandomOK {
		fmt.Println("\nnone of the random placements was schedulable; placement is not optional")
	}
}
