// Quickstart: build a small real-time stream set on a mesh, test its
// feasibility with the paper's delay-upper-bound algorithm, and confirm
// the bounds against the flit-level wormhole simulator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/topology"
)

func main() {
	// A 6x6 mesh multicomputer with X-Y routing.
	mesh := topology.NewMesh2D(6, 6)
	router := routing.NewXY(mesh)
	set := stream.NewSet(mesh)

	// Three periodic message streams. Larger priority = more important.
	// Add(router, src, dst, priority, period T, length C, deadline D);
	// deadline 0 defaults to the period.
	mustAdd(set, router, mesh.ID(0, 0), mesh.ID(5, 0), 3, 50, 4, 0)   // control
	mustAdd(set, router, mesh.ID(1, 0), mesh.ID(5, 2), 2, 80, 12, 0)  // telemetry
	mustAdd(set, router, mesh.ID(0, 1), mesh.ID(5, 2), 1, 120, 30, 0) // bulk data

	// Step 1: the feasibility test (the paper's Determine-Feasibility).
	report, err := core.DetermineFeasibility(set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analysis:")
	for _, v := range report.Verdicts {
		s := set.Get(v.ID)
		fmt.Printf("  stream %d (priority %d): network latency %d, delay upper bound %d, deadline %d -> feasible=%v\n",
			v.ID, s.Priority, s.Latency, v.U, v.Deadline, v.Feasible)
	}
	fmt.Printf("set feasible: %v\n\n", report.Feasible)

	// Step 2: inspect why — the HP set of the lowest-priority stream.
	analyzer, err := core.NewAnalyzer(set)
	if err != nil {
		log.Fatal(err)
	}
	hp, err := analyzer.HP(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("who can block stream 2? %s\n\n", hp.String())

	// Step 3: simulate 20000 flit times of flit-level preemptive
	// wormhole switching and compare measured latencies to the bounds.
	simulator, err := sim.New(set, sim.Config{Cycles: 20000, Warmup: 200})
	if err != nil {
		log.Fatal(err)
	}
	res := simulator.Run()
	fmt.Println("simulation (flit-level preemptive wormhole):")
	for i, st := range res.PerStream {
		fmt.Printf("  stream %d: %d delivered, mean latency %.1f, max %d (bound %d)\n",
			i, st.Observed, st.Mean(), st.MaxLatency, report.Verdicts[i].U)
	}
}

func mustAdd(set *stream.Set, r routing.Router, src, dst topology.NodeID, prio, period, length, deadline int) {
	if _, err := set.Add(r, src, dst, prio, period, length, deadline); err != nil {
		log.Fatal(err)
	}
}
