# Convenience targets for the rtworm reproduction.

GO ?= go

.PHONY: all build test test-race vet lint lint-fix lint-sarif bench bench-json load-smoke explore-smoke mc-smoke reproduce quick-reproduce fuzz cover clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting drift, the standard vet passes, and the repo's own
# analyzers (see docs/LINTING.md). Any of the three failing fails CI.
lint:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/rtwlint ./...

# Apply every suggested fix rtwlint knows (defer cancel() insertion,
# stale-directive deletion); exits non-zero when unfixable findings
# remain. CI runs this and fails if it would produce a diff — fixable
# findings must not be committed.
lint-fix:
	$(GO) run ./cmd/rtwlint -fix ./...

# SARIF 2.1.0 log of the full run, for code-scanning upload. The
# artifact is always written (exit 1 = findings, still a valid log),
# but the exit status is propagated: a crash (exit 2) must fail the
# target instead of silently uploading an empty/partial SARIF.
lint-sarif:
	@status=0; $(GO) run ./cmd/rtwlint -sarif ./... > rtwlint.sarif || status=$$?; \
	if [ "$$status" -ge 2 ]; then echo "rtwlint -sarif failed (exit $$status)"; fi; \
	exit $$status

test:
	$(GO) test ./...

# The full suite under the race detector; the parallel Cal_U pool and
# the simulator are the concurrency-bearing packages this protects.
test-race:
	$(GO) test -race ./...

# Regenerate every table and figure as benchmarks (writes nothing).
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot: the five paper tables plus the
# core-engine micro-benchmarks, one iteration each with -benchmem,
# converted to JSON at the repo root (committed; see
# docs/PERFORMANCE.md for the tracked numbers and how to compare).
bench-json:
	$(GO) test -run '^$$' -bench '^(BenchmarkTable[1-5]|BenchmarkCalU|BenchmarkHPSetConstruction|BenchmarkSimulator|BenchmarkEventSim|BenchmarkMCReplications|BenchmarkAdmitIncremental|BenchmarkAdmitFull|BenchmarkDaemonLoad|BenchmarkExploreSweep|BenchmarkLintRepo)$$' \
		-benchtime=1x -benchmem . | $(GO) run ./cmd/benchjson -o BENCH_core.json

# Short deterministic load run against a hermetic in-process daemon:
# a fixed seed and rate, chaos kill/restart in the middle, zero error
# and shed budgets, -check gating the exit code. See docs/LOADTEST.md.
load-smoke:
	$(GO) run ./cmd/rtwormload -ops 300 -rate 1000 -seed 1 -clients 6 \
		-chaos -chaos-down 20ms -slo-errors 0 -slo-shed 0 -check -o /dev/null

# Small deterministic Monte-Carlo study on the fast event engine with
# -check cross-checking every replication against the cycle-accurate
# oracle. See docs/FASTSIM.md.
mc-smoke:
	$(GO) run ./cmd/rtwmc -topology mesh2d-10x10 -streams 12 -plevels 4 \
		-seeds 4 -configs preemptive:2,li:2 -cycles 5000 -warmup 100 \
		-engine event -check

# Tiny deterministic design-space smoke: sweep then synthesise an
# 8-point grid with simulator cross-validation. -check fails the target
# unless some sim-validated configuration admits the whole workload.
# The grid is chosen so the buffer-depth axis matters: the origin mesh
# admits the pool analytically at either depth, but only depth 2
# survives validation. See docs/EXPLORER.md.
explore-smoke:
	$(GO) run ./cmd/rtwexplore sweep -streams 12 -plevels 4 -genseed 1 \
		-topos mesh2d-10x10,ring-4 -vcs 1,4 -buffers 1,2 -policies workload \
		-validate -cycles 3000 -check
	$(GO) run ./cmd/rtwexplore synth -streams 12 -plevels 4 -genseed 1 \
		-topos mesh2d-10x10,ring-4 -vcs 1,4 -buffers 1,2 -policies workload \
		-validate -cycles 3000 -check

# Full paper reproduction into out/ (tables, figures+SVG, sweeps,
# crosscheck, summary).
reproduce:
	$(GO) run ./cmd/reproduce -out out

quick-reproduce:
	$(GO) run ./cmd/reproduce -out out -quick

fuzz:
	$(GO) test -fuzz=FuzzDiagram -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzDecodeSet -fuzztime=30s ./internal/stream/

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -rf out cover.out
