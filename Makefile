# Convenience targets for the rtworm reproduction.

GO ?= go

.PHONY: all build test vet bench reproduce quick-reproduce fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Regenerate every table and figure as benchmarks (writes nothing).
bench:
	$(GO) test -bench=. -benchmem ./...

# Full paper reproduction into out/ (tables, figures+SVG, sweeps,
# crosscheck, summary).
reproduce:
	$(GO) run ./cmd/reproduce -out out

quick-reproduce:
	$(GO) run ./cmd/reproduce -out out -quick

fuzz:
	$(GO) test -fuzz=FuzzDiagram -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzDecodeSet -fuzztime=30s ./internal/stream/

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -rf out cover.out
