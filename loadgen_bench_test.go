package repro

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/stream"
)

// BenchmarkDaemonLoad is the tracked daemon-throughput number in
// BENCH_core.json (make bench-json): one pinned open-loop profile —
// 200 mixed ops offered at 1000 ops/s from 6 clients against a
// hermetic snapshot-persisting daemon on the 10×10 mesh — reported as
// sustained goodput and the p99 open-loop latency clients saw. The
// run must stay clean: any error, shed or rejection fails the
// benchmark rather than quietly skewing the metric.
func BenchmarkDaemonLoad(b *testing.B) {
	sched, err := loadgen.BuildSchedule(loadgen.DefaultScheduleConfig(200, 1000, 1))
	if err != nil {
		b.Fatal(err)
	}
	var rep *loadgen.Report
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := loadgen.StartInProc(loadgen.InProcConfig{
			Topology:     stream.TopologySpec{Kind: "mesh2d", W: 10, H: 10},
			SnapshotPath: filepath.Join(b.TempDir(), "state.json"),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rep, err = loadgen.NewRunner(loadgen.Config{Clients: 6}, d).Run(sched)
		b.StopTimer()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		stopErr := d.Stop(ctx)
		cancel()
		if err != nil {
			b.Fatal(err)
		}
		if stopErr != nil {
			b.Fatal(stopErr)
		}
		if t := rep.Totals; t.Errors != 0 || t.Shed != 0 || t.Rejected != 0 {
			b.Fatalf("load profile not clean: %+v", t)
		}
		b.StartTimer()
	}
	b.ReportMetric(rep.GoodputOPS, "goodput-ops/s")
	b.ReportMetric(float64(rep.Totals.Sched.P99US), "p99-us")
}
