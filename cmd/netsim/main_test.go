package main

import (
	"path/filepath"
	"testing"
)

func TestParseArbiter(t *testing.T) {
	for _, name := range []string{"preemptive", "nonpreemptive-fifo", "nonpreemptive-priority", "li"} {
		k, err := parseArbiter(name)
		if err != nil {
			t.Fatal(err)
		}
		if k.String() != name {
			t.Fatalf("%s round-trips to %s", name, k)
		}
	}
	if _, err := parseArbiter("bogus"); err == nil {
		t.Fatal("accepted bogus arbiter")
	}
}

func TestRunSmoke(t *testing.T) {
	file := filepath.Join("..", "..", "testdata", "paper_example.json")
	opts := simOptions{dropLate: true, jitter: 3, deadlock: 100}
	if err := run(2000, 100, "preemptive", 2, false, true, true, true, opts, []string{file}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	file := filepath.Join("..", "..", "testdata", "paper_example.json")
	if err := run(2000, 100, "bogus", 2, false, false, false, false, simOptions{}, []string{file}); err == nil {
		t.Error("accepted bogus arbiter")
	}
	if err := run(2000, 100, "preemptive", 2, false, false, false, false, simOptions{}, []string{"a", "b"}); err == nil {
		t.Error("accepted two files")
	}
	if err := run(2000, 100, "preemptive", 2, false, false, false, false, simOptions{}, []string{"/nope.json"}); err == nil {
		t.Error("accepted missing file")
	}
}

func TestRunTopologyMode(t *testing.T) {
	for _, name := range []string{"ring-12", "hypercube-4", "torus2d-4x4", "mesh2d-4x4"} {
		opts := simOptions{topology: name, streams: 8, plevels: 4, genseed: 1}
		if err := run(1500, 100, "preemptive", 2, false, true, false, false, opts, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunEngineFlag(t *testing.T) {
	opts := simOptions{topology: "ring-12", streams: 8, plevels: 4, genseed: 1, engine: "event"}
	if err := run(1500, 100, "preemptive", 2, false, false, false, true, opts, nil); err != nil {
		t.Fatal(err)
	}
	opts.engine = "warp"
	if err := run(1500, 100, "preemptive", 2, false, false, false, false, opts, nil); err == nil {
		t.Error("accepted unknown engine")
	}
}

func TestRunTopologyModeErrors(t *testing.T) {
	opts := simOptions{topology: "bus-4", streams: 8, plevels: 4, genseed: 1}
	if err := run(1000, 100, "preemptive", 2, false, false, false, false, opts, nil); err == nil {
		t.Error("accepted unknown topology")
	}
	opts = simOptions{topology: "ring-8", streams: 8, plevels: 4, genseed: 1}
	if err := run(1000, 100, "preemptive", 2, false, false, false, false, opts, []string{"x.json"}); err == nil {
		t.Error("accepted -topology together with an input file")
	}
}
