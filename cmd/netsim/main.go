// Command netsim runs the flit-level wormhole simulator on a
// JSON-described stream set and reports per-stream latency statistics,
// optionally side by side with the analytical delay upper bounds.
//
// Usage:
//
//	netsim [-cycles N] [-warmup N] [-arbiter preemptive|nonpreemptive-fifo|nonpreemptive-priority|li]
//	       [-buffer N] [-strict] [-bounds] [-engine cycle|event] [file.json]
//	netsim -topology ring-16 [-streams N] [-plevels P] [-genseed S] ...
//
// With -topology, no input file is read: a paper-§5-style workload is
// generated on the named topology (mesh2d-WxH, torus2d-WxH,
// hypercube-D or ring-N) with its canonical deterministic routing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	cycles := flag.Int("cycles", 30000, "simulated flit times")
	warmup := flag.Int("warmup", 200, "start-up flit times omitted from statistics")
	arbiter := flag.String("arbiter", "preemptive", "priority handling: preemptive, nonpreemptive-fifo, nonpreemptive-priority, li")
	buffer := flag.Int("buffer", 2, "per-VC flit buffer depth")
	strict := flag.Bool("strict", false, "use the paper's literal (non-work-conserving) physical arbitration")
	bounds := flag.Bool("bounds", false, "also compute analytical delay upper bounds and report ratios")
	heatmap := flag.Bool("heatmap", false, "render a per-link utilisation heatmap (mesh topologies)")
	stalls := flag.Bool("stalls", false, "decompose per-stream time into progress/arbitration/VC/buffer cycles")
	dropLate := flag.Bool("droplate", false, "abort messages older than their deadline")
	jitter := flag.Int("jitter", 0, "sporadic release jitter added to each inter-release gap")
	deadlock := flag.Int("deadlock", 0, "deadlock-detector threshold in cycles (0 = off)")
	engine := flag.String("engine", mc.EngineCycle, "simulation engine: cycle (oracle) or event (fast)")
	topoName := flag.String("topology", "", "generate a §5-style workload on this topology (mesh2d-WxH, torus2d-WxH, hypercube-D, ring-N) instead of reading a stream-set file")
	streams := flag.Int("streams", 16, "generated streams (with -topology)")
	plevels := flag.Int("plevels", 4, "generated priority levels (with -topology)")
	genseed := flag.Int64("genseed", 1, "workload generation seed (with -topology)")
	flag.Parse()

	opts := simOptions{
		dropLate: *dropLate, jitter: *jitter, deadlock: *deadlock, engine: *engine,
		topology: *topoName, streams: *streams, plevels: *plevels, genseed: *genseed,
	}
	if err := run(*cycles, *warmup, *arbiter, *buffer, *strict, *bounds, *heatmap, *stalls, opts, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(1)
	}
}

func parseArbiter(s string) (sim.ArbiterKind, error) {
	for _, k := range []sim.ArbiterKind{sim.Preemptive, sim.NonPreemptiveFIFO, sim.NonPreemptivePriority, sim.Li} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown arbiter %q", s)
}

type simOptions struct {
	dropLate bool
	jitter   int
	deadlock int
	engine   string

	// Workload generation (-topology mode).
	topology string
	streams  int
	plevels  int
	genseed  int64
}

// loadSet reads the stream set from a file/stdin, or generates one on
// the named topology when -topology is set.
func loadSet(opts simOptions, args []string) (*stream.Set, error) {
	if opts.topology != "" {
		if len(args) > 0 {
			return nil, fmt.Errorf("-topology and an input file are mutually exclusive")
		}
		topo, err := topology.Parse(opts.topology)
		if err != nil {
			return nil, err
		}
		cfg := workload.PaperDefaults(opts.streams, opts.plevels, opts.genseed)
		set, _, err := workload.GenerateOn(topo, cfg)
		return set, err
	}
	var in io.Reader = os.Stdin
	if len(args) > 1 {
		return nil, fmt.Errorf("at most one input file, got %d", len(args))
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	return stream.DecodeSet(in)
}

func run(cycles, warmup int, arbiter string, buffer int, strict, bounds, heatmap, stalls bool, opts simOptions, args []string) error {
	set, err := loadSet(opts, args)
	if err != nil {
		return err
	}
	kind, err := parseArbiter(arbiter)
	if err != nil {
		return err
	}
	var us []int
	if bounds {
		a, err := core.NewAnalyzer(set)
		if err != nil {
			return err
		}
		us = make([]int, set.Len())
		for _, s := range set.Streams {
			if us[s.ID], err = a.CalUSearchCap(s.ID, 1<<16); err != nil {
				return err
			}
		}
	}
	res, err := mc.RunEngine(opts.engine, set, sim.Config{
		Cycles: cycles, Warmup: warmup, Arbiter: kind,
		BufferDepth: buffer, StrictPhysicalPriority: strict,
		DropLate: opts.dropLate, SporadicJitter: opts.jitter,
		DeadlockThreshold: opts.deadlock,
	})
	if err != nil {
		return err
	}

	fmt.Println(res.String())
	if res.FirstDeadlockCycle >= 0 {
		fmt.Printf("WARNING: deadlock suspected from cycle %d\n", res.FirstDeadlockCycle)
	}
	fmt.Printf("%-8s %-6s %-6s %-6s %-9s %-9s %-6s %-6s %-9s", "stream", "prio", "L", "gen", "observed", "mean", "p95", "max", "misses")
	if bounds {
		fmt.Printf(" %-8s %-9s", "U", "mean/U")
	}
	fmt.Println()
	for i := range res.PerStream {
		st := &res.PerStream[i]
		sdef := set.Get(stream.ID(i))
		fmt.Printf("M%-7d %-6d %-6d %-6d %-9d %-9.1f %-6d %-6d %-9d",
			i, sdef.Priority, sdef.Latency, st.Generated, st.Observed, st.Mean(), st.Latencies.Quantile(0.95), st.MaxLatency, st.Misses)
		if bounds {
			if us[i] > 0 {
				fmt.Printf(" %-8d %-9.3f", us[i], st.Mean()/float64(us[i]))
			} else {
				fmt.Printf(" %-8s %-9s", "-", "-")
			}
		}
		fmt.Println()
	}
	if stalls {
		fmt.Println("\nstall decomposition (cycles in flight per stream):")
		fmt.Printf("%-8s %-10s %-10s %-10s %-10s\n", "stream", "progress", "arb-stall", "vc-stall", "buf-stall")
		for i := range res.PerStream {
			st := &res.PerStream[i]
			fmt.Printf("M%-7d %-10d %-10d %-10d %-10d\n",
				i, st.ProgressCycles, st.ArbStallCycles, st.VCStallCycles, st.BufferStallCycles)
		}
	}
	if heatmap {
		m, ok := set.Topology.(*topology.Mesh2D)
		if !ok {
			return fmt.Errorf("-heatmap requires a mesh2d topology, got %s", set.Topology.Name())
		}
		fmt.Println()
		fmt.Print(sim.MeshHeatmap(m, res))
	}
	return nil
}
