package main

import "testing"

func TestParsePattern(t *testing.T) {
	for _, name := range []string{"uniform", "transpose", "bit-reversal", "hotspot", "nearest-neighbor"} {
		p, err := parsePattern(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != name {
			t.Fatalf("%s -> %s", name, p)
		}
	}
	if _, err := parsePattern("bogus"); err == nil {
		t.Fatal("accepted bogus pattern")
	}
}

func TestRunSingleTable(t *testing.T) {
	if err := run("3", false, 0, 0, 0, 1, 5000, 7, "uniform", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunRule(t *testing.T) {
	if err := run("", true, 8, 3, 0.5, 1, 3000, 5, "uniform", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", false, 0, 0, 0, 1, 1000, 0, "uniform", false); err == nil {
		t.Error("accepted bad table number")
	}
	if err := run("9", false, 0, 0, 0, 1, 1000, 0, "uniform", false); err == nil {
		t.Error("accepted unknown table")
	}
	if err := run("1", false, 0, 0, 0, 1, 1000, 0, "bogus", false); err == nil {
		t.Error("accepted bogus pattern")
	}
}

func TestRunCSV(t *testing.T) {
	if err := run("1", false, 0, 0, 0, 1, 3000, 7, "uniform", true); err != nil {
		t.Fatal(err)
	}
}

func TestPick(t *testing.T) {
	if pick(0, 42) != 42 || pick(7, 42) != 7 {
		t.Fatal("pick wrong")
	}
}
