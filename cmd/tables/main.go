// Command tables regenerates the paper's evaluation tables (§5).
//
// Usage:
//
//	tables -table all            # Tables 1-5
//	tables -table 3              # one table
//	tables -rule -streams 20     # the |M|/4 priority-level rule sweep
//	tables -trials 5 -cycles 30000 -seed 1234
//
// Each table reports, per priority level, the ratio between actual
// (simulated) message latencies and the computed delay upper bounds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/exp"
	"repro/internal/workload"
)

func main() {
	table := flag.String("table", "all", "paper table number (1-5) or 'all'")
	rule := flag.Bool("rule", false, "run the |M|/4 priority-level rule sweep instead of tables")
	streams := flag.Int("streams", 20, "stream count for -rule")
	maxLevels := flag.Int("maxlevels", 12, "maximum priority levels for -rule")
	target := flag.Float64("target", 0.9, "top-level ratio target for -rule")
	trials := flag.Int("trials", 3, "independent trials averaged per table")
	cycles := flag.Int("cycles", 30000, "simulated flit times per trial")
	seed := flag.Int64("seed", 0, "base seed override (0: per-table default)")
	pattern := flag.String("pattern", "uniform", "traffic pattern: uniform, transpose, bit-reversal, hotspot, nearest-neighbor")
	csv := flag.Bool("csv", false, "emit per-stream CSV rows instead of the formatted table")
	flag.Parse()

	if err := run(*table, *rule, *streams, *maxLevels, *target, *trials, *cycles, *seed, *pattern, *csv); err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(1)
	}
}

func parsePattern(s string) (workload.Pattern, error) {
	for _, p := range []workload.Pattern{workload.Uniform, workload.Transpose, workload.BitReversal, workload.Hotspot, workload.NearestNeighbor} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown pattern %q", s)
}

func run(table string, rule bool, streams, maxLevels int, target float64, trials, cycles int, seed int64, pattern string, csv bool) error {
	pat, err := parsePattern(pattern)
	if err != nil {
		return err
	}
	if rule {
		res, err := exp.RunRuleSweep(streams, target, maxLevels, pick(seed, 42), cycles)
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
		return nil
	}
	var nums []int
	if table == "all" {
		nums = []int{1, 2, 3, 4, 5}
	} else {
		n, err := strconv.Atoi(table)
		if err != nil {
			return fmt.Errorf("bad -table %q", table)
		}
		nums = []int{n}
	}
	for _, n := range nums {
		spec, err := exp.PaperTable(n)
		if err != nil {
			return err
		}
		spec.Trials = trials
		spec.Cycles = cycles
		spec.Pattern = pat
		if pat != workload.Uniform {
			spec.Name += " [" + pat.String() + " traffic]"
		}
		if seed != 0 {
			spec.Seed = seed
		}
		res, err := exp.RunTable(spec)
		if err != nil {
			return err
		}
		if csv {
			for trial, t := range res.Trials {
				fmt.Printf("# %s, trial %d\n%s", spec.Name, trial, t.CSV())
			}
		} else {
			fmt.Println(res.Format())
		}
	}
	return nil
}

func pick(v, def int64) int64 {
	if v != 0 {
		return v
	}
	return def
}
