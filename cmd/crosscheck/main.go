// Command crosscheck differentially validates the delay-upper-bound
// analysis against the flit-level simulator over random workloads.
//
// Usage:
//
//	crosscheck [-trials N] [-streams N] [-levels N] [-cycles N] [-seed S]
//
// Every stream's observed maximum latency is compared to its computed
// bound. The exit status is 0 when all bounds hold and 2 when a
// violation is found that is NOT attributable to same-priority
// virtual-channel sharing (a genuine analysis defect); known-benign
// sharing violations exit 0 but are listed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/crosscheck"
)

func main() {
	trials := flag.Int("trials", 10, "independent random workloads")
	streams := flag.Int("streams", 20, "streams per workload")
	levels := flag.Int("levels", 4, "priority levels")
	cycles := flag.Int("cycles", 30000, "simulated flit times per trial")
	seed := flag.Int64("seed", 1, "base seed")
	flag.Parse()

	rep, err := crosscheck.Run(crosscheck.Config{
		Trials: *trials, Streams: *streams, PLevels: *levels,
		Cycles: *cycles, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crosscheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Format())
	for _, v := range rep.Violations {
		if v.SamePriorityOverlaps == 0 {
			fmt.Fprintln(os.Stderr, "crosscheck: genuine analysis violation found")
			os.Exit(2)
		}
	}
}
