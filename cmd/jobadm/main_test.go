package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunScenarioErrors(t *testing.T) {
	if err := run(false, []string{"a", "b"}); err == nil {
		t.Error("accepted two files")
	}
	if err := run(false, []string{"/nonexistent.json"}); err == nil {
		t.Error("accepted missing file")
	}
}

// Note: the repository scenario contains a deliberately infeasible job,
// so run() would os.Exit(1); the full flow is covered through
// internal/jobs. Here we only exercise an all-feasible scenario.
func TestRunFeasibleScenario(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	writeFile(t, path, `{
		"topology": {"kind": "mesh2d", "w": 5, "h": 5},
		"jobs": [
			{"name": "a", "tasks": 3, "demands": [
				{"from": 0, "to": 1, "priority": 2, "period": 60, "length": 6},
				{"from": 1, "to": 2, "priority": 2, "period": 60, "length": 6}
			]},
			{"name": "b", "tasks": 2, "demands": [
				{"from": 0, "to": 1, "priority": 1, "period": 90, "length": 10}
			]}
		]
	}`)
	if err := run(true, []string{path}); err != nil {
		t.Fatal(err)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
