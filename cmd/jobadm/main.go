// Command jobadm plays the host processor of the paper's system model:
// it reads an admission scenario (a machine plus a queue of real-time
// jobs) and admits jobs in order, placing each job's tasks on free
// nodes and accepting it only when the combined traffic passes the
// message-stream feasibility test.
//
// Usage:
//
//	jobadm scenario.json
//
// Scenario format:
//
//	{
//	  "topology": {"kind": "mesh2d", "w": 6, "h": 6},
//	  "jobs": [
//	    {"name": "radar", "tasks": 4,
//	     "demands": [{"from": 0, "to": 1, "priority": 3, "period": 50, "length": 8}]},
//	    ...
//	  ]
//	}
//
// The exit status is 0 when every job was admitted, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/jobs"
)

func main() {
	verbose := flag.Bool("v", false, "print per-stream bounds of the final system")
	flag.Parse()
	if err := run(*verbose, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "jobadm: %v\n", err)
		os.Exit(1)
	}
}

func run(verbose bool, args []string) error {
	var in io.Reader = os.Stdin
	if len(args) > 1 {
		return fmt.Errorf("at most one scenario file, got %d", len(args))
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	ctl, queue, err := jobs.DecodeFile(in)
	if err != nil {
		return err
	}
	rejected := 0
	for _, j := range queue {
		v, err := ctl.Admit(j)
		if err != nil {
			return err
		}
		if v.Admitted {
			fmt.Printf("ADMIT  %-16s %2d tasks, %2d nodes left\n", j.Name, j.Graph.Tasks, v.FreeAfter)
		} else {
			rejected++
			fmt.Printf("REJECT %-16s (%s)\n", j.Name, v.Reason)
		}
	}
	fmt.Println()
	fmt.Print(ctl.Utilization())
	rep, err := ctl.Report()
	if err != nil {
		return err
	}
	fmt.Printf("final system feasible: %v\n", rep.Feasible)
	if verbose {
		set, owners, err := ctl.Snapshot()
		if err != nil {
			return err
		}
		for i, v := range rep.Verdicts {
			s := set.Get(v.ID)
			fmt.Printf("  %-16s stream %-3d prio %-2d U=%-5d D=%-5d\n", owners[i], i, s.Priority, v.U, v.Deadline)
		}
	}
	if rejected > 0 {
		os.Exit(1)
	}
	return nil
}
