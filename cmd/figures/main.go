// Command figures regenerates the paper's figure examples:
//
//	figures -fig 2         # priority inversion, non-preemptive vs preemptive
//	figures -fig 4         # U calculation, direct blocking (U = 26)
//	figures -fig 6         # U calculation, indirect blocking (U = 22)
//	figures -fig example   # the full §4.4 worked example (Figures 3, 7, 8, 9)
//	figures -fig all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/exp"
	"repro/internal/viz"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2, 4, 6, example, all")
	cycles := flag.Int("cycles", 10000, "simulated flit times for figure 2")
	svgDir := flag.String("svgdir", "", "also write the timing diagrams as SVG files into this directory")
	flag.Parse()

	if err := run(*fig, *cycles); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
	if *svgDir != "" {
		if err := writeSVGs(*svgDir); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeSVGs renders the four timing diagrams as standalone SVGs.
func writeSVGs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fig4, err := exp.Figure4Diagram()
	if err != nil {
		return err
	}
	fig6, err := exp.Figure6Diagram()
	if err != nil {
		return err
	}
	initial, final, err := exp.WorkedExampleDiagrams()
	if err != nil {
		return err
	}
	files := []struct {
		name, svg string
	}{
		{"figure4.svg", viz.TimingDiagramSVG(fig4, "Figure 4 — U calculation for a direct blocking (U = 26)", 0)},
		{"figure6.svg", viz.TimingDiagramSVG(fig6, "Figure 6 — U calculation for an indirect blocking (U = 22)", 0)},
		{"figure7.svg", viz.TimingDiagramSVG(initial, "Figure 7 — initial timing diagram of HP_4 (7 free slots)", 0)},
		{"figure9.svg", viz.TimingDiagramSVG(final, "Figure 9 — final timing diagram of HP_4 (U_4 = 33)", 0)},
	}
	for _, f := range files {
		path := filepath.Join(dir, f.name)
		if err := os.WriteFile(path, []byte(f.svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

func run(fig string, cycles int) error {
	type gen func() (*exp.FigureReport, error)
	gens := map[string]gen{
		"2":       func() (*exp.FigureReport, error) { return exp.Figure2(cycles) },
		"4":       exp.Figure4,
		"6":       exp.Figure6,
		"example": exp.WorkedExample,
	}
	var order []string
	if fig == "all" {
		order = []string{"2", "4", "6", "example"}
	} else {
		if _, ok := gens[fig]; !ok {
			return fmt.Errorf("unknown figure %q (want 2, 4, 6, example, all)", fig)
		}
		order = []string{fig}
	}
	for i, k := range order {
		rep, err := gens[k]()
		if err != nil {
			return err
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(rep.Body)
	}
	return nil
}
