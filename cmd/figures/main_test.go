package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunAllFigures(t *testing.T) {
	if err := run("all", 3000); err != nil {
		t.Fatal(err)
	}
	if err := run("bogus", 3000); err == nil {
		t.Fatal("accepted unknown figure")
	}
}

func TestWriteSVGs(t *testing.T) {
	dir := t.TempDir()
	if err := writeSVGs(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"figure4.svg", "figure6.svg", "figure7.svg", "figure9.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 1000 {
			t.Fatalf("%s suspiciously small (%d bytes)", name, len(data))
		}
	}
}
