// Command rtwormload is the open-loop load/soak harness for rtwormd:
// it replays a deterministic admit/withdraw/job schedule against a
// live daemon, measures per-endpoint latency without coordinated
// omission, optionally kills and restarts the daemon mid-run (chaos),
// and judges the run against an SLO. The report is machine-readable
// JSON; -check turns SLO violations into a nonzero exit.
//
// Three targeting modes:
//
//	rtwormload -ops 500 -rate 200                 # self: hermetic in-process daemon
//	rtwormload -target http://host:8080           # attach to an external daemon (no chaos)
//	rtwormload -exec 'rtwormd -addr 127.0.0.1:9090 -topo ... -snapshot s.json' \
//	           -target http://127.0.0.1:9090      # managed subprocess (chaos-capable)
//
// See docs/LOADTEST.md for the full walkthrough.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rtwormload:", err)
		os.Exit(1)
	}
}

// run is main minus os.Exit, so tests can drive every mode.
func run(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("rtwormload", flag.ContinueOnError)

	// Schedule shape.
	ops := fs.Int("ops", 500, "total operations to replay")
	rate := fs.Float64("rate", 200, "offered load, operations per second (Poisson arrivals)")
	seed := fs.Int64("seed", 1, "schedule seed; same seed, same traffic")
	withdrawFrac := fs.Float64("withdraw-frac", 0.3, "fraction of ops that withdraw a live stream")
	reportFrac := fs.Float64("report-frac", 0.1, "fraction of ops that read /v1/report")
	jobSize := fs.Int("job-size", 1, "admissions per atomic job batch (>1 uses /v1/jobs)")
	pool := fs.Int("pool", 40, "stream-spec pool size the schedule draws from")
	plevels := fs.Int("plevels", 8, "priority levels in the generated pool")
	unordered := fs.Bool("unordered", false, "drop mutation-ordering deps: mutations race freely, analysis rejections become possible")

	// Runner / client pool.
	clients := fs.Int("clients", 4, "concurrent client workers")
	timeout := fs.Duration("timeout", 5*time.Second, "per-attempt HTTP timeout")
	attempts := fs.Int("attempts", 4, "attempts per operation (retries on 429 and transport errors)")
	backoff := fs.Duration("backoff", 10*time.Millisecond, "base retry backoff (doubles per attempt)")
	backoffCap := fs.Duration("backoff-cap", 2*time.Second, "backoff ceiling; a larger Retry-After still wins")

	// Target selection.
	target := fs.String("target", "", "base URL of an external daemon (empty: boot one in-process)")
	execCmd := fs.String("exec", "", "daemon command to spawn and manage (space-separated; needs -target for its URL)")

	// Self-mode daemon knobs (mirror rtwormd's flags).
	topoJSON := fs.String("topo", `{"kind":"mesh2d","w":10,"h":10}`, "self mode: topology spec JSON")
	snapshot := fs.String("snapshot", "", "self mode: snapshot path (empty: temp file, removed after the run)")
	mutQueue := fs.Int("queue", 256, "self mode: bounded mutation queue depth (0: unbounded)")
	queueWait := fs.Duration("queue-wait", time.Second, "self mode: longest a mutation waits for a queue slot before 429")
	retryAfter := fs.Duration("retry-after", time.Second, "self mode: Retry-After hint on 429")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "self mode: http.Server WriteTimeout")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "self mode: http.Server IdleTimeout")

	// Chaos.
	chaos := fs.Bool("chaos", false, "kill and restart the daemon mid-run, verify snapshot-restore convergence")
	chaosAt := fs.Duration("chaos-at", 0, "schedule offset of the kill (0: half the horizon)")
	chaosDown := fs.Duration("chaos-down", 50*time.Millisecond, "downtime between kill and restart")

	// SLO.
	sloP50 := fs.Int("slo-p50", 0, "p50 open-loop latency bound, microseconds (0: unchecked)")
	sloP99 := fs.Int("slo-p99", 0, "p99 open-loop latency bound, microseconds (0: unchecked)")
	sloP999 := fs.Int("slo-p999", 0, "p999 open-loop latency bound, microseconds (0: unchecked)")
	sloErrors := fs.Float64("slo-errors", 0, "error budget, errors/executed (negative: unchecked)")
	sloShed := fs.Float64("slo-shed", -1, "shed budget, sheds/executed (negative: unchecked)")

	// Output.
	outPath := fs.String("o", "", "write the JSON report here (empty: stdout)")
	check := fs.Bool("check", false, "exit nonzero when any SLO check fails")

	if err := fs.Parse(argv); err != nil {
		return err
	}

	scfg := loadgen.DefaultScheduleConfig(*ops, *rate, *seed)
	scfg.WithdrawFrac = *withdrawFrac
	scfg.ReportFrac = *reportFrac
	scfg.JobSize = *jobSize
	scfg.Workload.Streams = *pool
	scfg.Workload.PLevels = *plevels
	scfg.Unordered = *unordered
	sched, err := loadgen.BuildSchedule(scfg)
	if err != nil {
		return err
	}

	tgt, cleanup, err := buildTarget(*target, *execCmd, selfConfig{
		topoJSON:     *topoJSON,
		snapshot:     *snapshot,
		mutQueue:     *mutQueue,
		queueWait:    *queueWait,
		retryAfter:   *retryAfter,
		writeTimeout: *writeTimeout,
		idleTimeout:  *idleTimeout,
	})
	if err != nil {
		return err
	}
	defer cleanup()

	rcfg := loadgen.Config{
		Clients:        *clients,
		RequestTimeout: *timeout,
		MaxAttempts:    *attempts,
		BackoffBase:    *backoff,
		BackoffCap:     *backoffCap,
		SLO: loadgen.SLO{
			P50US:        *sloP50,
			P99US:        *sloP99,
			P999US:       *sloP999,
			MaxErrorFrac: *sloErrors,
			MaxShedFrac:  *sloShed,
		},
	}
	if *chaos {
		at := *chaosAt
		if at <= 0 {
			at = sched.Horizon / 2
		}
		rcfg.Chaos = &loadgen.ChaosConfig{After: at, Downtime: *chaosDown}
	}

	rep, err := loadgen.NewRunner(rcfg, tgt).Run(sched)
	if err != nil {
		return err
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, doc, 0o644); err != nil {
			return err
		}
		fmt.Fprint(out, rep.Summary())
	} else if _, err := out.Write(doc); err != nil {
		return err
	}
	if *check && !rep.Pass {
		return fmt.Errorf("SLO check failed (%d checks, see report)", len(rep.Checks))
	}
	return nil
}

// selfConfig carries the self-mode daemon knobs into buildTarget.
type selfConfig struct {
	topoJSON     string
	snapshot     string
	mutQueue     int
	queueWait    time.Duration
	retryAfter   time.Duration
	writeTimeout time.Duration
	idleTimeout  time.Duration
}

// buildTarget resolves the three targeting modes. The returned cleanup
// stops whatever the mode started (never nil).
func buildTarget(target, execCmd string, self selfConfig) (loadgen.Target, func(), error) {
	nop := func() {}
	switch {
	case execCmd != "":
		if target == "" {
			return nil, nop, fmt.Errorf("-exec needs -target with the spawned daemon's base URL")
		}
		argv := strings.Fields(execCmd)
		et := &execTarget{argv: argv, url: target}
		if err := et.Restart(); err != nil {
			return nil, nop, err
		}
		//rtwlint:ignore errdrop best-effort teardown at exit; the process is going away
		return et, func() { _ = et.Kill() }, nil
	case target != "":
		return loadgen.StaticTarget(target), nop, nil
	default:
		var ts stream.TopologySpec
		if err := json.Unmarshal([]byte(self.topoJSON), &ts); err != nil {
			return nil, nop, fmt.Errorf("-topo: %w", err)
		}
		snap := self.snapshot
		cleanup := nop
		if snap == "" {
			dir, err := os.MkdirTemp("", "rtwormload")
			if err != nil {
				return nil, nop, err
			}
			snap = filepath.Join(dir, "state.json")
			cleanup = func() { _ = os.RemoveAll(dir) }
		}
		d, err := loadgen.StartInProc(loadgen.InProcConfig{
			Topology:           ts,
			SnapshotPath:       snap,
			MaxQueuedMutations: self.mutQueue,
			QueueWait:          self.queueWait,
			RetryAfter:         self.retryAfter,
			WriteTimeout:       self.writeTimeout,
			IdleTimeout:        self.idleTimeout,
		})
		if err != nil {
			cleanup()
			return nil, nop, err
		}
		prev := cleanup
		return d, func() {
			//rtwlint:ignore errdrop best-effort teardown at exit; the process is going away
			_ = d.Kill()
			prev()
		}, nil
	}
}

// execTarget manages an external daemon subprocess. Kill is a hard
// SIGKILL — the crash the chaos mode wants — and Restart re-execs the
// same command line, relying on the daemon's snapshot for state.
type execTarget struct {
	argv []string
	url  string
	cmd  *exec.Cmd
}

func (t *execTarget) URL() string { return t.url }

func (t *execTarget) Kill() error {
	if t.cmd == nil || t.cmd.Process == nil {
		return nil
	}
	if err := t.cmd.Process.Kill(); err != nil {
		return err
	}
	_ = t.cmd.Wait() // reap; a SIGKILL exit status is expected
	t.cmd = nil
	return nil
}

func (t *execTarget) Restart() error {
	cmd := exec.Command(t.argv[0], t.argv[1:]...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("exec %s: %w", t.argv[0], err)
	}
	t.cmd = cmd
	return waitHealthy(t.url, 10*time.Second)
}

// waitHealthy polls /healthz until the daemon answers 200.
func waitHealthy(url string, timeout time.Duration) error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not healthy after %v", url, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
