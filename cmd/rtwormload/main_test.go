package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/loadgen"
	"repro/internal/stream"
)

// TestRunSelfMode drives the whole CLI in hermetic self mode: a small
// deterministic run must pass its SLO checks and emit a parseable
// report.
func TestRunSelfMode(t *testing.T) {
	outFile := filepath.Join(t.TempDir(), "report.json")
	var buf bytes.Buffer
	err := run([]string{
		"-ops", "60", "-rate", "1500", "-seed", "3",
		"-clients", "4",
		"-slo-errors", "0", "-slo-shed", "0",
		"-check",
		"-o", outFile,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(doc, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Totals.Sent != 60 || !rep.Pass {
		t.Fatalf("report: sent=%d pass=%v checks=%+v", rep.Totals.Sent, rep.Pass, rep.Checks)
	}
	if !strings.Contains(buf.String(), "loadgen:") {
		t.Fatalf("summary missing from output: %q", buf.String())
	}
}

// TestRunSelfModeChaos exercises the chaos flag end to end against the
// in-process daemon.
func TestRunSelfModeChaos(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-ops", "50", "-rate", "1200", "-seed", "9",
		"-chaos", "-chaos-down", "20ms",
		"-slo-errors", "0",
		"-check",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Chaos == nil || !rep.Chaos.ReportMatch {
		t.Fatalf("chaos result: %+v", rep.Chaos)
	}
}

// TestRunTargetMode attaches to an externally managed daemon via
// -target.
func TestRunTargetMode(t *testing.T) {
	d, err := loadgen.StartInProc(loadgen.InProcConfig{
		Topology:     stream.TopologySpec{Kind: "mesh2d", W: 10, H: 10},
		SnapshotPath: filepath.Join(t.TempDir(), "state.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Kill() })

	var buf bytes.Buffer
	err = run([]string{
		"-ops", "40", "-rate", "1500", "-seed", "5",
		"-target", d.URL(),
		"-slo-errors", "0", "-check",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Errors != 0 || !rep.Pass {
		t.Fatalf("target-mode run: %+v", rep.Totals)
	}
}

// TestRunCheckFailsOnViolatedSLO pins that -check turns a violated SLO
// into a nonzero exit: a p50 bound of 1us is unmeetable.
func TestRunCheckFailsOnViolatedSLO(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-ops", "30", "-rate", "2000", "-seed", "2",
		"-slo-p50", "1",
		"-check",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "SLO check failed") {
		t.Fatalf("err = %v", err)
	}
}

// TestRunFlagErrors covers the argument-validation paths.
func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-exec", "rtwormd"}, // -exec without -target
		{"-topo", "{"},       // bad topology JSON
		{"-ops", "0"},        // invalid schedule
		{"-withdraw-frac", "0.9", "-report-frac", "0.5"},
	}
	for _, argv := range cases {
		var buf bytes.Buffer
		if err := run(argv, &buf); err == nil {
			t.Fatalf("argv %v accepted", argv)
		}
	}
}
