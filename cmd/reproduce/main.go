// Command reproduce regenerates the paper's entire evaluation in one
// run and writes the artifacts into a directory:
//
//	reproduce -out out/ [-trials 3] [-cycles 30000] [-quick]
//
// Artifacts:
//
//	out/tables.txt       Tables 1-5 (ratio actual/U per priority level)
//	out/figures.txt      Figure 2 demo, Figures 4/6, the §4.4 worked example
//	out/figure*.svg      timing diagrams as SVG
//	out/rule.txt         the |M|/4 priority-level sweeps
//	out/crosscheck.txt   differential validation of analysis vs simulator
//	out/report.txt       one-page summary with the headline comparisons
//	out/report.json      the same summary, machine readable
//
// -quick reduces trial counts and simulated time for a fast smoke run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/crosscheck"
	"repro/internal/exp"
	"repro/internal/viz"
)

func main() {
	out := flag.String("out", "out", "output directory")
	trials := flag.Int("trials", 3, "trials per table")
	cycles := flag.Int("cycles", 30000, "simulated flit times per trial")
	quick := flag.Bool("quick", false, "fast smoke run (fewer trials, shorter simulations)")
	flag.Parse()

	if *quick {
		*trials = 1
		*cycles = 10000
	}
	if err := run(*out, *trials, *cycles); err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		os.Exit(1)
	}
}

func run(dir string, trials, cycles int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var summary strings.Builder
	summary.WriteString("Reproduction summary — A Real-Time Communication Method for Wormhole Switching Networks (ICPP 1998)\n\n")

	write := func(name, content string) error {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}

	// Worked example + figures.
	var figs strings.Builder
	worked, err := exp.WorkedExample()
	if err != nil {
		return err
	}
	figs.WriteString(worked.Body + "\n")
	fig2, err := exp.Figure2(cycles)
	if err != nil {
		return err
	}
	figs.WriteString(fig2.Body + "\n")
	fig4, err := exp.Figure4()
	if err != nil {
		return err
	}
	figs.WriteString(fig4.Body + "\n")
	fig6, err := exp.Figure6()
	if err != nil {
		return err
	}
	figs.WriteString(fig6.Body)
	if err := write("figures.txt", figs.String()); err != nil {
		return err
	}
	fmt.Fprintf(&summary, "worked example: U = (%d, %d, %d, %d, %d); paper (7, 8, 26, -, 33)\n",
		worked.Values["U0"], worked.Values["U1"], worked.Values["U2"], worked.Values["U3"], worked.Values["U4"])
	fmt.Fprintf(&summary, "figure 4: U = %d (paper 26); figure 6: U = %d (paper 22)\n",
		fig4.Values["U"], fig6.Values["U"])
	fmt.Fprintf(&summary, "figure 2 priority inversion: non-preemptive max %d vs preemptive max %d (unloaded %d)\n\n",
		fig2.Values["nonpreemptiveMax"], fig2.Values["preemptiveMax"], fig2.Values["unloaded"])

	// SVG diagrams.
	d4, err := exp.Figure4Diagram()
	if err != nil {
		return err
	}
	d6, err := exp.Figure6Diagram()
	if err != nil {
		return err
	}
	initial, final, err := exp.WorkedExampleDiagrams()
	if err != nil {
		return err
	}
	svgs := map[string]string{
		"figure4.svg": viz.TimingDiagramSVG(d4, "Figure 4 — direct blocking (U = 26)", 0),
		"figure6.svg": viz.TimingDiagramSVG(d6, "Figure 6 — indirect blocking (U = 22)", 0),
		"figure7.svg": viz.TimingDiagramSVG(initial, "Figure 7 — initial HP_4 diagram", 0),
		"figure9.svg": viz.TimingDiagramSVG(final, "Figure 9 — final HP_4 diagram (U_4 = 33)", 0),
	}
	for name, svg := range svgs {
		if err := write(name, svg); err != nil {
			return err
		}
	}

	// Tables 1-5.
	var tables strings.Builder
	var tableTops []float64
	for n := 1; n <= 5; n++ {
		spec, err := exp.PaperTable(n)
		if err != nil {
			return err
		}
		spec.Trials = trials
		spec.Cycles = cycles
		res, err := exp.RunTable(spec)
		if err != nil {
			return err
		}
		tables.WriteString(res.Format() + "\n")
		tableTops = append(tableTops, res.TopRatio())
		fmt.Fprintf(&summary, "table %d: top-level mean ratio %.3f, bottom %.3f\n", n, res.TopRatio(), res.BottomRatio())
	}
	if err := write("tables.txt", tables.String()); err != nil {
		return err
	}
	summary.WriteString("\n")

	// The |M|/4 rule.
	var rule strings.Builder
	for _, streams := range []int{20, 60} {
		maxLevels := streams/4 + 3
		sweep, err := exp.RunRuleSweep(streams, 0.9, maxLevels, 42, cycles)
		if err != nil {
			return err
		}
		rule.WriteString(sweep.Format() + "\n")
		fmt.Fprintf(&summary, "rule sweep |M|=%d: 0.9 first crossed at %d levels (paper: |M|/4 = %d suffices)\n",
			streams, sweep.MinLevels, streams/4)
	}
	if err := write("rule.txt", rule.String()); err != nil {
		return err
	}
	summary.WriteString("\n")

	// Differential validation.
	cc, err := crosscheck.Run(crosscheck.Config{Trials: trials * 3, Cycles: cycles, Seed: 7})
	if err != nil {
		return err
	}
	if err := write("crosscheck.txt", cc.Format()); err != nil {
		return err
	}
	fmt.Fprintf(&summary, "crosscheck: %d bounds checked, %d violations (all same-priority VC sharing: %v)\n",
		cc.Checked, len(cc.Violations), allSharing(cc))

	if err := write("report.txt", summary.String()); err != nil {
		return err
	}
	// Machine-readable summary alongside the text.
	js, err := json.MarshalIndent(machineSummary{
		Paper: "A Real-Time Communication Method for Wormhole Switching Networks (ICPP 1998)",
		WorkedExampleU: []int{
			worked.Values["U0"], worked.Values["U1"], worked.Values["U2"],
			worked.Values["U3"], worked.Values["U4"],
		},
		Figure4U:         fig4.Values["U"],
		Figure6U:         fig6.Values["U"],
		Fig2Nonpreempt:   fig2.Values["nonpreemptiveMax"],
		Fig2Preempt:      fig2.Values["preemptiveMax"],
		TableTopRatios:   tableTops,
		CrosscheckChecks: cc.Checked,
		CrosscheckViol:   len(cc.Violations),
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := write("report.json", string(js)+"\n"); err != nil {
		return err
	}
	fmt.Println("\n" + summary.String())
	return nil
}

// machineSummary is the JSON shape of out/report.json.
type machineSummary struct {
	Paper            string    `json:"paper"`
	WorkedExampleU   []int     `json:"workedExampleU"`
	Figure4U         int       `json:"figure4U"`
	Figure6U         int       `json:"figure6U"`
	Fig2Nonpreempt   int       `json:"figure2NonpreemptiveMax"`
	Fig2Preempt      int       `json:"figure2PreemptiveMax"`
	TableTopRatios   []float64 `json:"tableTopRatios"`
	CrosscheckChecks int       `json:"crosscheckChecked"`
	CrosscheckViol   int       `json:"crosscheckViolations"`
}

func allSharing(r *crosscheck.Report) bool {
	for _, v := range r.Violations {
		if v.SamePriorityOverlaps == 0 {
			return false
		}
	}
	return true
}
