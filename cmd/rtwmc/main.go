// Command rtwmc is the Monte-Carlo replication runner: it simulates N
// workload seeds under each of M network configurations and reports
// per-configuration distribution summaries (mean ± 95% CI, p50/p95,
// range) for miss ratio and latency.
//
// Usage:
//
//	rtwmc [-topology mesh2d-10x10] [-streams N] [-plevels P]
//	      [-seeds N] [-baseseed S] [-configs arb[:buffer],...]
//	      [-cycles N] [-warmup N] [-engine cycle|event] [-workers N]
//	      [-check] [-json | -csv]
//
// Each entry of -configs is an arbiter name (preemptive,
// nonpreemptive-fifo, nonpreemptive-priority, li) with an optional
// :buffer depth suffix; every entry becomes one study point sharing
// the topology and traffic shape. Results are byte-identical for any
// -workers value.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/mc"
	"repro/internal/sim"
)

func main() {
	topo := flag.String("topology", "mesh2d-10x10", "topology for every point (mesh2d-WxH, torus2d-WxH, hypercube-D, ring-N)")
	streams := flag.Int("streams", 20, "generated streams per workload")
	plevels := flag.Int("plevels", 4, "generated priority levels")
	seeds := flag.Int("seeds", 20, "replications (workload seeds) per configuration")
	baseSeed := flag.Int64("baseseed", 1, "base seed; replication seeds derive from it deterministically")
	configs := flag.String("configs", "preemptive", "comma-separated points: arbiter[:buffer] (e.g. preemptive:2,li:2)")
	cycles := flag.Int("cycles", 30000, "simulated flit times per replication")
	warmup := flag.Int("warmup", 200, "start-up flit times omitted from statistics")
	engine := flag.String("engine", mc.EngineCycle, "simulation engine: cycle (oracle) or event (fast)")
	workers := flag.Int("workers", 0, "parallel replications (0 = GOMAXPROCS); never affects results")
	check := flag.Bool("check", false, "cross-check every replication against the other engine")
	asJSON := flag.Bool("json", false, "emit the full result (summaries + replications) as JSON")
	asCSV := flag.Bool("csv", false, "emit one CSV row per replication")
	flag.Parse()

	if err := run(*topo, *streams, *plevels, *seeds, *baseSeed, *configs,
		*cycles, *warmup, *engine, *workers, *check, *asJSON, *asCSV); err != nil {
		fmt.Fprintf(os.Stderr, "rtwmc: %v\n", err)
		os.Exit(1)
	}
}

func run(topo string, streams, plevels, seeds int, baseSeed int64, configs string,
	cycles, warmup int, engine string, workers int, check, asJSON, asCSV bool) error {
	if asJSON && asCSV {
		return fmt.Errorf("-json and -csv are mutually exclusive")
	}
	points, err := parseConfigs(configs, topo, streams, plevels, cycles, warmup)
	if err != nil {
		return err
	}
	res, err := mc.Run(mc.Config{
		Seeds: seeds, BaseSeed: baseSeed, Engine: engine,
		Workers: workers, Check: check, Points: points,
	})
	if err != nil {
		return err
	}
	switch {
	case asJSON:
		return res.JSON(os.Stdout)
	case asCSV:
		return res.CSV(os.Stdout)
	default:
		return res.Table(os.Stdout)
	}
}

// parseConfigs expands "arb[:buffer],..." into study points sharing
// the topology and traffic shape.
func parseConfigs(spec, topo string, streams, plevels, cycles, warmup int) ([]mc.PointConfig, error) {
	var points []mc.PointConfig
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, bufSpec, hasBuf := strings.Cut(entry, ":")
		arb, err := parseArbiter(name)
		if err != nil {
			return nil, err
		}
		buffer := 2
		if hasBuf {
			buffer, err = strconv.Atoi(bufSpec)
			if err != nil || buffer < 1 {
				return nil, fmt.Errorf("bad buffer depth in %q", entry)
			}
		}
		points = append(points, mc.PointConfig{
			Topology: topo, Streams: streams, PLevels: plevels,
			Arbiter: arb, Buffer: buffer, Cycles: cycles, Warmup: warmup,
		})
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("empty -configs")
	}
	return points, nil
}

func parseArbiter(s string) (sim.ArbiterKind, error) {
	for _, k := range []sim.ArbiterKind{sim.Preemptive, sim.NonPreemptiveFIFO, sim.NonPreemptivePriority, sim.Li} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown arbiter %q", s)
}
