package main

import (
	"strings"
	"testing"
)

func TestParseConfigs(t *testing.T) {
	points, err := parseConfigs("preemptive:2,li:1, nonpreemptive-fifo", "ring-8", 6, 3, 2000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	if points[1].Buffer != 1 || points[1].Arbiter.String() != "li" {
		t.Fatalf("point 1 = %+v", points[1])
	}
	if points[2].Buffer != 2 {
		t.Fatalf("default buffer not applied: %+v", points[2])
	}
	for _, p := range points {
		if p.Topology != "ring-8" || p.Streams != 6 || p.PLevels != 3 || p.Cycles != 2000 || p.Warmup != 100 {
			t.Fatalf("shared shape not applied: %+v", p)
		}
	}

	for _, bad := range []string{"", "warp", "li:0", "li:x"} {
		if _, err := parseConfigs(bad, "ring-8", 6, 3, 2000, 100); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestRunSmoke(t *testing.T) {
	if err := run("ring-8", 6, 3, 3, 1, "preemptive:2,li:2",
		2000, 100, "event", 2, true, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run("ring-8", 6, 3, 2, 1, "preemptive",
		2000, 100, "cycle", 1, false, true, false); err != nil {
		t.Fatal(err)
	}
	if err := run("ring-8", 6, 3, 2, 1, "preemptive",
		2000, 100, "cycle", 1, false, false, true); err != nil {
		t.Fatal(err)
	}
	if err := run("ring-8", 6, 3, 2, 1, "preemptive",
		2000, 100, "cycle", 1, false, true, true); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("json+csv accepted: %v", err)
	}
}
