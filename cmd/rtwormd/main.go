// Command rtwormd is the online admission-control daemon: it keeps a
// live stream set for one wormhole network and answers admit/withdraw
// requests over a JSON HTTP API, re-running the paper's feasibility
// test incrementally on every mutation (internal/admit). State
// survives restarts through an atomically written JSON snapshot.
//
// Usage:
//
//	rtwormd -addr :8080 -topo '{"kind":"mesh2d","w":10,"h":10}' \
//	        -snapshot /var/lib/rtwormd/state.json
//
// When the snapshot file exists at boot, the topology inside it wins
// and -topo is ignored; otherwise the flag is required. SIGINT/SIGTERM
// trigger a graceful shutdown that drains in-flight requests for up to
// -drain. See docs/DAEMON.md for the API reference.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/admit"
	"repro/internal/server"
	"repro/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rtwormd:", err)
		os.Exit(1)
	}
}

// run is main minus os.Exit, so tests can drive the whole boot path.
func run(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("rtwormd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	topoJSON := fs.String("topo", "", `topology spec JSON, e.g. {"kind":"mesh2d","w":10,"h":10}`)
	snapshot := fs.String("snapshot", "", "snapshot file for persistence and restore-on-boot (empty: in-memory only)")
	workers := fs.Int("workers", 0, "recompute worker goroutines (0: GOMAXPROCS)")
	routerLatency := fs.Int("router-latency", 0, "per-hop router latency added to each stream's network latency")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout (0: unlimited)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections (0: unlimited)")
	mutQueue := fs.Int("mutation-queue", 256, "bounded mutation queue depth; extra mutations shed with 429 (0: unbounded)")
	queueWait := fs.Duration("queue-wait", time.Second, "longest a mutation waits for a queue slot before 429")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 429, rounded up to whole seconds")
	if err := fs.Parse(argv); err != nil {
		return err
	}

	cfg := admit.Config{Workers: *workers, RouterLatency: *routerLatency}
	var ctl *admit.Controller
	if *snapshot != "" {
		restored, ok, err := server.LoadSnapshot(*snapshot, cfg)
		if err != nil {
			return err
		}
		if ok {
			ctl = restored
			fmt.Fprintf(out, "restored %d streams from %s\n", ctl.Len(), *snapshot)
		}
	}
	if ctl == nil {
		if *topoJSON == "" {
			return fmt.Errorf("no snapshot to restore; -topo is required")
		}
		var ts stream.TopologySpec
		if err := json.Unmarshal([]byte(*topoJSON), &ts); err != nil {
			return fmt.Errorf("-topo: %w", err)
		}
		topo, err := ts.Build()
		if err != nil {
			return fmt.Errorf("-topo: %w", err)
		}
		ctl, err = admit.New(topo, cfg)
		if err != nil {
			return err
		}
	}

	srv, err := server.New(server.Config{
		Controller:         ctl,
		SnapshotPath:       *snapshot,
		MaxQueuedMutations: *mutQueue,
		QueueWait:          *queueWait,
		RetryAfter:         *retryAfter,
		WriteTimeout:       *writeTimeout,
		IdleTimeout:        *idleTimeout,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "rtwormd listening on %s (%d streams admitted)\n", ln.Addr(), ctl.Len())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Println("shutting down, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}
