package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/admit"
	"repro/internal/server"
	"repro/internal/stream"
)

func writeSnapshot(t *testing.T, dir string) string {
	t.Helper()
	topo, err := stream.TopologySpec{Kind: "mesh2d", W: 10, H: 10}.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := admit.New(topo, admit.Config{})
	if err != nil {
		t.Fatal(err)
	}
	specs := []admit.Spec{
		{Src: 37, Dst: 77, Priority: 5, Period: 15, Length: 4},
		{Src: 11, Dst: 45, Priority: 4, Period: 10, Length: 2},
	}
	for _, sp := range specs {
		if _, err := ctl.Admit(sp); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "state.json")
	if err := server.SaveSnapshot(ctl, path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBootRejectsTruncatedSnapshot pins the boot-failure contract: a
// snapshot cut off mid-write must refuse to boot with an error that
// names the file and says it is corrupt or truncated — not a panic,
// not a silently empty daemon.
func TestBootRejectsTruncatedSnapshot(t *testing.T) {
	path := writeSnapshot(t, t.TempDir())
	doc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, doc[:len(doc)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	err = run([]string{"-snapshot", path}, io.Discard)
	if err == nil {
		t.Fatal("boot accepted a truncated snapshot")
	}
	for _, want := range []string{path, "corrupt or truncated"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// TestBootRejectsInfeasibleSnapshot: a hand-edited snapshot whose
// traffic fails the feasibility test is refused, and the error names
// the offending stream and handle so the operator can repair the file.
func TestBootRejectsInfeasibleSnapshot(t *testing.T) {
	// The worked infeasible pair: the second stream's tight period and
	// high priority index cannot meet its deadline next to the first.
	sn := admit.Snapshot{
		Topology:   stream.TopologySpec{Kind: "mesh2d", W: 10, H: 10},
		NextHandle: 3,
		Streams: []admit.SnapshotStream{
			{Handle: 1, Src: 0, Dst: 3, Priority: 1, Period: 60, Length: 6},
			{Handle: 2, Src: 0, Dst: 5, Priority: 9, Period: 8, Length: 8, Deadline: 2000},
		},
	}
	doc, err := json.Marshal(&sn)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state.json")
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}

	err = run([]string{"-snapshot", path}, io.Discard)
	if err == nil {
		t.Fatal("boot accepted an infeasible snapshot")
	}
	// The analysis blames the low-priority stream: the tight period-8
	// stream preempts it past its deadline.
	for _, want := range []string{"infeasible", "handle 1", "0->3"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// TestBootRequiresTopology: no snapshot to restore and no -topo is a
// configuration error, reported before any listener opens.
func TestBootRequiresTopology(t *testing.T) {
	err := run(nil, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-topo is required") {
		t.Fatalf("err = %v", err)
	}
	err = run([]string{"-topo", `{"kind":"klein-bottle"}`}, io.Discard)
	if err == nil {
		t.Fatal("bad topology accepted")
	}
}
