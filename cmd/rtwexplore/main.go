// Command rtwexplore is the design-space explorer CLI: it sweeps a
// grid of network configurations — topology × routing × virtual
// channels × buffer depth × priority policy — scoring each with the
// paper's feasibility analysis, or synthesises the cheapest
// configuration that admits a whole workload.
//
//	rtwexplore sweep -streams 20 -plevels 4 -json -
//	rtwexplore sweep -workload set.json -validate -csv sweep.csv -svg sweep.svg
//	rtwexplore synth -topos mesh2d-4x4,ring-16 -vcs 1,2,4 -check
//
// The workload is either a stream-set JSON file (-workload) or the
// built-in §5 pool (-streams/-plevels/-genseed). Results are
// byte-identical for every -workers value; see docs/EXPLORER.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/explore"
	"repro/internal/mc"
	"repro/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rtwexplore:", err)
		os.Exit(1)
	}
}

const usage = `usage: rtwexplore <sweep|synth> [flags]
  sweep   score every configuration of the grid
  synth   find the cheapest configuration admitting the whole workload
Run rtwexplore <subcommand> -h for the flag list.`

// run is main minus os.Exit, so tests can drive both subcommands.
func run(argv []string, out io.Writer) error {
	if len(argv) == 0 {
		return fmt.Errorf("no subcommand\n%s", usage)
	}
	switch argv[0] {
	case "sweep":
		return runSweep(argv[1:], out)
	case "synth":
		return runSynth(argv[1:], out)
	case "-h", "-help", "--help", "help":
		fmt.Fprintln(out, usage)
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q\n%s", argv[0], usage)
	}
}

// common holds the flags shared by both subcommands.
type common struct {
	workloadFile string
	streams      int
	plevels      int
	genseed      int64

	topos    string
	routings string
	vcs      string
	buffers  string
	policies string

	seed    int64
	workers int

	validate bool
	cycles   int
	engine   string

	costNode, costVC, costBuf int

	jsonPath, csvPath, svgPath string
	check                      bool
}

func addCommon(fs *flag.FlagSet) *common {
	var c common
	fs.StringVar(&c.workloadFile, "workload", "", "stream-set JSON file ('-' = stdin); empty: generate the §5 pool")
	fs.IntVar(&c.streams, "streams", 20, "generated §5 pool: stream count")
	fs.IntVar(&c.plevels, "plevels", 4, "generated §5 pool: priority levels")
	fs.Int64Var(&c.genseed, "genseed", 1, "generated §5 pool: workload seed")

	fs.StringVar(&c.topos, "topos", "", "comma-separated topologies (mesh2d-WxH, torus2d-WxH, hypercube-D, ring-N); empty: default grid")
	fs.StringVar(&c.routings, "routings", "", "comma-separated routing policies (canonical, xy, yx); empty: canonical")
	fs.StringVar(&c.vcs, "vcs", "", "comma-separated virtual-channel counts; empty: 1,2,4,8")
	fs.StringVar(&c.buffers, "buffers", "", "comma-separated per-VC buffer depths; empty: 1,2")
	fs.StringVar(&c.policies, "policies", "", "comma-separated priority policies (workload, rate-monotonic, deadline-monotonic); empty: workload")

	fs.Int64Var(&c.seed, "seed", 1, "placement seed; same seed, same results")
	fs.IntVar(&c.workers, "workers", 0, "evaluation workers (0 = GOMAXPROCS); any value gives byte-identical results")

	fs.BoolVar(&c.validate, "validate", false, "cross-validate fully-admitting points in the flit-level simulator")
	fs.IntVar(&c.cycles, "cycles", 0, "simulated flit times per validation run (0 = 5000)")
	fs.StringVar(&c.engine, "engine", mc.EngineCycle, "validation engine: cycle (oracle) or event (fast)")

	fs.IntVar(&c.costNode, "cost-node", 0, "cost-model weight per node (0 = default 4)")
	fs.IntVar(&c.costVC, "cost-vc", 0, "cost-model weight per link VC (0 = default 2)")
	fs.IntVar(&c.costBuf, "cost-buf", 0, "cost-model weight per buffered flit slot (0 = default 1)")

	fs.StringVar(&c.jsonPath, "json", "", "write the full JSON result to this file ('-' = stdout)")
	fs.StringVar(&c.csvPath, "csv", "", "write a per-point CSV to this file ('-' = stdout)")
	fs.StringVar(&c.svgPath, "svg", "", "write a cost/utilization plot to this file")
	fs.BoolVar(&c.check, "check", false, "exit nonzero unless the verdict is positive (sweep: some point admits everything; synth: a winner exists)")
	return &c
}

func (c *common) workload() (explore.Workload, error) {
	if c.workloadFile == "" {
		return explore.PaperPool(c.streams, c.plevels, c.genseed)
	}
	var r io.Reader = os.Stdin
	name := "stdin"
	if c.workloadFile != "-" {
		f, err := os.Open(c.workloadFile)
		if err != nil {
			return explore.Workload{}, err
		}
		defer f.Close()
		r = f
		name = strings.TrimSuffix(filepath.Base(c.workloadFile), filepath.Ext(c.workloadFile))
	}
	set, err := stream.DecodeSet(r)
	if err != nil {
		return explore.Workload{}, fmt.Errorf("workload %s: %w", c.workloadFile, err)
	}
	return explore.FromSet(name, set), nil
}

func (c *common) space() (explore.Space, error) {
	sp := explore.DefaultSpace()
	if c.topos != "" {
		sp.Topologies = splitList(c.topos)
	}
	if c.routings != "" {
		sp.Routings = splitList(c.routings)
	}
	if c.policies != "" {
		sp.Policies = splitList(c.policies)
	}
	var err error
	if c.vcs != "" {
		if sp.VCs, err = parseInts(c.vcs); err != nil {
			return sp, fmt.Errorf("-vcs: %w", err)
		}
	}
	if c.buffers != "" {
		if sp.Buffers, err = parseInts(c.buffers); err != nil {
			return sp, fmt.Errorf("-buffers: %w", err)
		}
	}
	return sp, nil
}

func (c *common) cost() explore.CostModel {
	m := explore.DefaultCostModel()
	if c.costNode != 0 {
		m.PerNode = c.costNode
	}
	if c.costVC != 0 {
		m.PerVC = c.costVC
	}
	if c.costBuf != 0 {
		m.PerBufferFlit = c.costBuf
	}
	return m
}

func (c *common) eval() (explore.EvalConfig, error) {
	switch c.engine {
	case "", mc.EngineCycle, mc.EngineEvent:
	default:
		return explore.EvalConfig{}, fmt.Errorf("-engine: unknown engine %q (want %q or %q)", c.engine, mc.EngineCycle, mc.EngineEvent)
	}
	return explore.EvalConfig{Validate: c.validate, ValidateCycles: c.cycles, Engine: c.engine}, nil
}

// emit writes one rendered artifact to its destination ('-' = out).
func emit(path string, data []byte, out io.Writer) error {
	if path == "-" {
		_, err := out.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

type rendered interface {
	JSON() ([]byte, error)
	CSV() ([]byte, error)
	SVG() string
}

func (c *common) emitAll(r rendered, out io.Writer) error {
	if c.jsonPath != "" {
		b, err := r.JSON()
		if err != nil {
			return err
		}
		if err := emit(c.jsonPath, b, out); err != nil {
			return err
		}
	}
	if c.csvPath != "" {
		b, err := r.CSV()
		if err != nil {
			return err
		}
		if err := emit(c.csvPath, b, out); err != nil {
			return err
		}
	}
	if c.svgPath != "" {
		if err := emit(c.svgPath, []byte(r.SVG()), out); err != nil {
			return err
		}
	}
	return nil
}

func runSweep(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("rtwexplore sweep", flag.ContinueOnError)
	c := addCommon(fs)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	w, err := c.workload()
	if err != nil {
		return err
	}
	sp, err := c.space()
	if err != nil {
		return err
	}
	eval, err := c.eval()
	if err != nil {
		return err
	}
	res, err := explore.Sweep(w, sp, explore.SweepConfig{
		Seed: c.seed, Workers: c.workers, Cost: c.cost(), Eval: eval,
	})
	if err != nil {
		return err
	}
	if err := c.emitAll(res, out); err != nil {
		return err
	}
	if c.jsonPath != "-" && c.csvPath != "-" {
		printSweepSummary(out, res)
	}
	if c.check {
		admitting := 0
		for i := range res.Points {
			if res.Points[i].Admitting {
				admitting++
			}
		}
		if admitting == 0 {
			return fmt.Errorf("check failed: no configuration admits the whole workload")
		}
	}
	return nil
}

func printSweepSummary(out io.Writer, res *explore.SweepResult) {
	find := func(idx int) *explore.PointResult {
		for i := range res.Points {
			if res.Points[i].Index == idx {
				return &res.Points[i]
			}
		}
		return nil
	}
	fmt.Fprintf(out, "workload %s: %d demands, total utilization %.3f\n", res.Workload, res.Demands, res.TotalUtil)
	fmt.Fprintf(out, "swept %d configurations\n", len(res.Points))
	if b := find(res.BestIndex); b != nil {
		fmt.Fprintf(out, "best:  %s admitted %d/%d (util %.3f, cost %d)\n",
			describe(b), b.Admitted, b.Total, b.AdmittedUtil, b.Cost)
	}
	if w := find(res.WorstIndex); w != nil {
		fmt.Fprintf(out, "worst: %s admitted %d/%d (util %.3f, cost %d)\n",
			describe(w), w.Admitted, w.Total, w.AdmittedUtil, w.Cost)
	}
	fmt.Fprintf(out, "best-to-worst admitted-utilization spread: %.3f%%\n", res.SpreadPct)
}

func runSynth(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("rtwexplore synth", flag.ContinueOnError)
	c := addCommon(fs)
	exhaustive := fs.Int("exhaustive-limit", 0, "evaluate grids up to this size exhaustively (0 = 64)")
	chunk := fs.Int("chunk", 0, "cheapest-first pruning chunk size (0 = 16)")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	w, err := c.workload()
	if err != nil {
		return err
	}
	sp, err := c.space()
	if err != nil {
		return err
	}
	eval, err := c.eval()
	if err != nil {
		return err
	}
	res, err := explore.Synthesize(w, sp, explore.SynthConfig{
		Seed: c.seed, Workers: c.workers, Cost: c.cost(), Eval: eval,
		ExhaustiveLimit: *exhaustive, ChunkSize: *chunk,
	})
	if err != nil {
		return err
	}
	if err := c.emitAll(res, out); err != nil {
		return err
	}
	if c.jsonPath != "-" && c.csvPath != "-" {
		printSynthSummary(out, res)
	}
	if c.check && res.Winner == nil {
		return fmt.Errorf("check failed: no configuration in the space admits the whole workload")
	}
	return nil
}

func printSynthSummary(out io.Writer, res *explore.SynthResult) {
	fmt.Fprintf(out, "workload %s: %d demands, total utilization %.3f\n", res.Workload, res.Demands, res.TotalUtil)
	mode := "cheapest-first"
	if res.Exhaustive {
		mode = "exhaustive"
	}
	fmt.Fprintf(out, "evaluated %d/%d configurations (%s)\n", res.Evaluated, res.GridPoints, mode)
	if res.Winner != nil {
		fmt.Fprintf(out, "winner: %s at cost %d (admits %d/%d, util %.3f)\n",
			describe(res.Winner), res.Winner.Cost, res.Winner.Admitted, res.Winner.Total, res.Winner.AdmittedUtil)
	} else {
		fmt.Fprintln(out, "winner: none — no evaluated configuration admits the whole workload")
	}
	fmt.Fprintf(out, "frontier: %d points\n", len(res.Frontier))
}

func describe(p *explore.PointResult) string {
	return fmt.Sprintf("%s/%s vcs=%d buffer=%d policy=%s", p.Topology, p.Routing, p.VCs, p.Buffer, p.Policy)
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	var out []string
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list %q", s)
	}
	return out, nil
}
