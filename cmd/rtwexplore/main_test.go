package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/stream"
	"repro/internal/workload"
)

// tiny is a grid small enough for fast test runs; §5 pool workloads
// inflate on the 10×10 mesh, so mesh2d-10x10 with vcs ≥ plevels is
// guaranteed to admit the full set.
var tiny = []string{"-streams", "6", "-plevels", "2", "-genseed", "3",
	"-topos", "mesh2d-10x10,ring-8", "-vcs", "1,2", "-buffers", "1", "-policies", "workload"}

func TestSweepJSONToStdout(t *testing.T) {
	var out bytes.Buffer
	args := append([]string{"sweep", "-json", "-"}, tiny...)
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	var res explore.SweepResult
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("stdout is not the JSON result: %v", err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("got %d points", len(res.Points))
	}
	if res.Demands != 6 {
		t.Fatalf("demands %d", res.Demands)
	}
}

func TestSweepSummary(t *testing.T) {
	var out bytes.Buffer
	if err := run(append([]string{"sweep"}, tiny...), &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"swept 4 configurations", "best:", "worst:", "spread"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	var runs [][]byte
	for _, workers := range []string{"1", "4"} {
		var out bytes.Buffer
		args := append([]string{"sweep", "-json", "-", "-workers", workers}, tiny...)
		if err := run(args, &out); err != nil {
			t.Fatal(err)
		}
		runs = append(runs, out.Bytes())
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Fatal("-workers changed the JSON output")
	}
}

// TestSweepEngineFlag runs the validated tiny sweep under -engine
// cycle and -engine event and requires byte-identical JSON.
func TestSweepEngineFlag(t *testing.T) {
	var runs [][]byte
	for _, engine := range []string{"cycle", "event"} {
		var out bytes.Buffer
		args := append([]string{"sweep", "-json", "-", "-validate", "-cycles", "2000", "-engine", engine}, tiny...)
		if err := run(args, &out); err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		runs = append(runs, out.Bytes())
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Fatal("-engine event JSON differs from -engine cycle")
	}
}

func TestSweepFileOutputs(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "sweep.json")
	csvPath := filepath.Join(dir, "sweep.csv")
	svgPath := filepath.Join(dir, "sweep.svg")
	var out bytes.Buffer
	args := append([]string{"sweep", "-json", jsonPath, "-csv", csvPath, "-svg", svgPath}, tiny...)
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{jsonPath, csvPath, svgPath} {
		b, err := os.ReadFile(p)
		if err != nil || len(b) == 0 {
			t.Fatalf("artifact %s missing or empty: %v", p, err)
		}
	}
	svg, _ := os.ReadFile(svgPath)
	if !strings.HasPrefix(string(svg), "<svg ") {
		t.Fatal("svg artifact is not an SVG")
	}
	// The summary still goes to stdout when files absorb the data.
	if !strings.Contains(out.String(), "best:") {
		t.Fatalf("no summary on stdout:\n%s", out.String())
	}
}

// writeLightSet writes a light 4×4-mesh stream set (short messages,
// 4 priority levels, inflated periods) to a temp file: light enough
// that the simulator confirms the analysis with zero misses.
func writeLightSet(t *testing.T) string {
	t.Helper()
	set, _, err := workload.Generate(workload.Config{
		MeshW: 4, MeshH: 4, Streams: 5, PLevels: 4,
		CMin: 1, CMax: 8, TMin: 40, TMax: 90,
		Seed: 9, InflatePeriods: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "set.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.EncodeSet(f, set); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestSweepFromWorkloadFile(t *testing.T) {
	path := writeLightSet(t)
	var out bytes.Buffer
	args := []string{"sweep", "-workload", path, "-json", "-",
		"-topos", "mesh2d-4x4", "-vcs", "4", "-buffers", "1", "-policies", "workload"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	var res explore.SweepResult
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Workload != "set" || res.Demands != 5 {
		t.Fatalf("workload header: %+v", res)
	}
	if !res.Points[0].FullyAdmitted {
		t.Fatalf("inflated workload rejected on its origin mesh: %+v", res.Points[0])
	}
}

func TestSynthFindsWinner(t *testing.T) {
	path := writeLightSet(t)
	var out bytes.Buffer
	args := []string{"synth", "-json", "-", "-check", "-validate", "-cycles", "2000",
		"-workload", path, "-topos", "ring-8,mesh2d-4x4", "-vcs", "1,4", "-buffers", "1,2", "-policies", "workload"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	var res explore.SynthResult
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Winner == nil {
		t.Fatal("no winner on a grid containing the origin mesh")
	}
	if !res.Winner.Admitting || !res.Winner.Validated {
		t.Fatalf("winner not sim-validated: %+v", res.Winner)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
}

func TestSynthCheckFailsWhenNothingAdmits(t *testing.T) {
	// 30 heavy §5 streams cannot fit a 1-VC ring-4.
	var out bytes.Buffer
	args := []string{"synth", "-check", "-streams", "30", "-plevels", "4",
		"-topos", "ring-4", "-vcs", "1", "-buffers", "1", "-policies", "workload"}
	err := run(args, &out)
	if err == nil || !strings.Contains(err.Error(), "check failed") {
		t.Fatalf("expected check failure, got %v", err)
	}
}

func TestSynthSummary(t *testing.T) {
	var out bytes.Buffer
	if err := run(append([]string{"synth"}, tiny...), &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"evaluated", "winner:", "frontier:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestBadInvocations(t *testing.T) {
	cases := [][]string{
		{},
		{"paint"},
		{"sweep", "extra-arg"},
		{"sweep", "-vcs", "two"},
		{"sweep", "-topos", "klein-bottle-4"},
		{"sweep", "-workload", filepath.Join(t.TempDir(), "absent.json")},
		{"sweep", "-validate", "-engine", "warp"},
		{"synth", "-validate", "-engine", "warp"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %q accepted", args)
		}
	}
}

func TestHelp(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"help"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sweep") || !strings.Contains(out.String(), "synth") {
		t.Fatalf("help output: %s", out.String())
	}
}
