// Command rtworm runs the paper's message stream feasibility test on a
// JSON-described stream set: it computes every stream's delay upper
// bound U and succeeds iff U <= D for all streams.
//
// Usage:
//
//	rtworm [-hp] [-diagram N] [-horizon H] [file.json]
//
// With no file, the stream set is read from standard input. The JSON
// format is:
//
//	{
//	  "topology": {"kind": "mesh2d", "w": 10, "h": 10},
//	  "streams": [
//	    {"srcXY": [7,3], "dstXY": [7,7], "priority": 5, "period": 15, "length": 4, "deadline": 15},
//	    ...
//	  ]
//	}
//
// The exit status is 0 when the set is feasible and 1 when it is not
// (or on error), so the tool can gate admission in scripts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/stream"
)

func main() {
	showHP := flag.Bool("hp", false, "print every stream's HP set and blocking dependency graph")
	diagram := flag.Int("diagram", -1, "render the timing diagram of the given stream")
	horizon := flag.Int("horizon", 0, "diagram horizon in flit times (default: the stream's deadline)")
	sens := flag.Int("sens", -1, "sensitivity analysis for the given stream: max message length and min period keeping the set feasible")
	interf := flag.Int("interference", -1, "marginal interference breakdown for the given stream")
	doAssign := flag.Bool("assign", false, "when the set is infeasible, search for a feasible priority assignment")
	flag.Parse()

	if err := run(*showHP, *diagram, *horizon, *sens, *interf, *doAssign, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "rtworm: %v\n", err)
		os.Exit(1)
	}
}

func run(showHP bool, diagram, horizon, sens, interf int, doAssign bool, args []string) error {
	var in io.Reader = os.Stdin
	if len(args) > 1 {
		return fmt.Errorf("at most one input file, got %d", len(args))
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	set, err := stream.DecodeSet(in)
	if err != nil {
		return err
	}
	a, err := core.NewAnalyzer(set)
	if err != nil {
		return err
	}

	fmt.Printf("topology %s, %d message streams\n\n", set.Topology.Name(), set.Len())
	if showHP {
		for i := 0; i < set.Len(); i++ {
			hp, err := a.HP(stream.ID(i))
			if err != nil {
				return err
			}
			fmt.Println(hp.String())
			g, err := a.BDG(stream.ID(i))
			if err != nil {
				return err
			}
			fmt.Println("  " + g.String())
		}
		fmt.Println()
	}

	rep, err := core.DetermineFeasibility(set)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-6s %-6s %-6s %-6s %-6s %-8s %s\n", "stream", "prio", "T", "C", "L", "D", "U", "verdict")
	for _, v := range rep.Verdicts {
		s := set.Get(v.ID)
		verdict := "ok"
		u := fmt.Sprintf("%d", v.U)
		if v.U < 0 {
			u = "-"
			verdict = "NO BOUND"
		} else if !v.Feasible {
			verdict = "MISSES DEADLINE"
		}
		fmt.Printf("M%-7d %-6d %-6d %-6d %-6d %-6d %-8s %s\n",
			v.ID, s.Priority, s.Period, s.Length, s.Latency, s.Deadline, u, verdict)
	}

	if diagram >= 0 {
		id := stream.ID(diagram)
		if set.Get(id) == nil {
			return fmt.Errorf("no stream %d", diagram)
		}
		h := horizon
		if h == 0 {
			h = set.Get(id).Deadline
		}
		d, err := a.Diagram(id, h)
		if err != nil {
			return err
		}
		fmt.Printf("\ntiming diagram of HP_%d (horizon %d):\n%s", diagram, h, d.Render(0))
	}

	if interf >= 0 {
		id := stream.ID(interf)
		s := set.Get(id)
		if s == nil {
			return fmt.Errorf("no stream %d", interf)
		}
		rep, err := a.Interference(id, s.Deadline)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(rep.Format())
	}

	if sens >= 0 {
		id := stream.ID(sens)
		s := set.Get(id)
		if s == nil {
			return fmt.Errorf("no stream %d", sens)
		}
		maxC, err := core.MaxFeasibleLength(set, id, 4*s.Length+64)
		if err != nil {
			return err
		}
		minT, err := core.MinFeasiblePeriod(set, id, 1)
		if err != nil {
			return err
		}
		fmt.Printf("\nsensitivity of M%d (C=%d, T=%d):\n", sens, s.Length, s.Period)
		fmt.Printf("  max message length keeping the set feasible: %d flits\n", maxC)
		if minT > 0 {
			fmt.Printf("  min period keeping the set feasible:        %d flit times\n", minT)
		} else {
			fmt.Printf("  the set is infeasible even at the current period\n")
		}
	}

	if rep.Feasible {
		fmt.Println("\nresult: success — every stream meets its deadline")
		return nil
	}
	fmt.Println("\nresult: fail — at least one stream can miss its deadline")
	if doAssign {
		res, err := assign.Search(set)
		if err != nil {
			return err
		}
		if res.Priorities == nil {
			fmt.Printf("no feasible priority assignment found (%d orderings tested)\n", res.Tested)
		} else {
			fmt.Printf("\na feasible priority assignment exists (%d feasibility tests):\n", res.Tested)
			for i, p := range res.Priorities {
				fmt.Printf("  M%-3d priority %d -> %d\n", i, set.Get(stream.ID(i)).Priority, p)
			}
		}
	}
	os.Exit(1)
	return nil
}
