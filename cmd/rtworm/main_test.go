package main

import (
	"os"
	"path/filepath"
	"testing"
)

func paperFile(t *testing.T) string {
	t.Helper()
	// The repository-level testdata file, reached relative to this
	// package directory.
	p := filepath.Join("..", "..", "testdata", "paper_example.json")
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("missing %s: %v", p, err)
	}
	return p
}

func TestRunFeasibleSet(t *testing.T) {
	if err := run(true, 4, 50, 1, 4, false, []string{paperFile(t)}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(false, -1, 0, -1, -1, false, []string{"a", "b"}); err == nil {
		t.Error("accepted two files")
	}
	if err := run(false, -1, 0, -1, -1, false, []string{"/nonexistent.json"}); err == nil {
		t.Error("accepted missing file")
	}
	if err := run(false, 99, 0, -1, -1, false, []string{paperFile(t)}); err == nil {
		t.Error("accepted bad diagram stream")
	}
	if err := run(false, -1, 0, 99, -1, false, []string{paperFile(t)}); err == nil {
		t.Error("accepted bad sensitivity stream")
	}
	if err := run(false, -1, 0, -1, 99, false, []string{paperFile(t)}); err == nil {
		t.Error("accepted bad interference stream")
	}
}
