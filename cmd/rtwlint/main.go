// Command rtwlint runs the repository's domain-specific analyzers (see
// internal/lint and docs/LINTING.md) over the packages matching the
// given patterns:
//
//	rtwlint [-list] [-only name,name] [-json|-sarif] [-fix] [packages...]
//
// With no patterns it checks ./.... Findings from every package are
// merged and sorted by file, line, column, analyzer, message — the
// output is byte-stable across runs and machines. The default format is
// one finding per line:
//
//	path/file.go:line:col: message (analyzer)
//
// -json emits the same findings as a JSON array; -sarif emits a SARIF
// 2.1.0 log (the format GitHub code scanning ingests). -fix applies the
// first suggested fix of every diagnostic that carries one, rewriting
// the files in place (gofmt-formatted), and succeeds when every finding
// was fixable.
//
// Exit status: 0 on a clean run (or, with -fix, when every finding was
// fixed), 1 when findings survive, 2 on usage or load errors. rtwlint
// complements `go vet` (run both; see `make lint`): vet covers the
// generic mistakes, rtwlint the invariants of the paper's analysis
// pipeline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is one diagnostic with its resolved position, the unit the
// output formats share.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable,omitempty"`

	diag analysis.Diagnostic
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtwlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	asSARIF := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	fix := fs.Bool("fix", false, "apply the first suggested fix of each finding, rewriting files in place")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: rtwlint [-list] [-only name,name] [-json|-sarif] [-fix] [packages...]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(stderr, "rtwlint: -json and -sarif are mutually exclusive")
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		selected, err := selectAnalyzers(analyzers, *only)
		if err != nil {
			fmt.Fprintln(stderr, "rtwlint:", err)
			return 2
		}
		analyzers = selected
	}

	pkgs, err := loader.Load("", fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "rtwlint:", err)
		return 2
	}

	// Every package of one Load call shares a FileSet, so diagnostics
	// from different packages sort (and fix) against the same positions.
	// Packages run in parallel inside one module context: the
	// interprocedural analyzers build their call graph and summary cache
	// once (analysis.Module.Shared) and every pass reuses it. Results
	// are indexed by package, then merged in package order, so the
	// output stays byte-identical to a serial run.
	var fset = tokenFileSet(pkgs)
	mod := analysis.NewModule(pkgs)
	perPkg := make([][]analysis.Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *analysis.Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			//rtwlint:ignore unsyncshared each goroutine writes only its own index; wg.Wait orders the reads
			perPkg[i], errs[i] = analysis.RunInModule(pkg, mod, analyzers)
		}(i, pkg)
	}
	wg.Wait()
	var findings []finding
	for i, pkg := range pkgs {
		if errs[i] != nil {
			fmt.Fprintln(stderr, "rtwlint:", errs[i])
			return 2
		}
		for _, d := range perPkg[i] {
			pos := pkg.Fset.Position(d.Pos)
			findings = append(findings, finding{
				File:     relPath(pos.Filename),
				Line:     pos.Line,
				Column:   pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Fixable:  len(d.SuggestedFixes) > 0,
				diag:     d,
			})
		}
	}
	sortFindings(findings)

	switch {
	case *asJSON:
		if err := writeJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "rtwlint:", err)
			return 2
		}
	case *asSARIF:
		if err := writeSARIF(stdout, analyzers, findings); err != nil {
			fmt.Fprintln(stderr, "rtwlint:", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Column, f.Message, f.Analyzer)
		}
	}

	if *fix {
		fixed, files, err := applyFixes(fset, findings)
		if err != nil {
			fmt.Fprintln(stderr, "rtwlint:", err)
			return 2
		}
		unfixed := 0
		for _, f := range findings {
			if !f.Fixable {
				unfixed++
			}
		}
		if fixed > 0 {
			fmt.Fprintf(stderr, "rtwlint: applied %d fix(es) across %d file(s)\n", fixed, files)
		}
		if unfixed > 0 {
			fmt.Fprintf(stderr, "rtwlint: %d finding(s) had no suggested fix\n", unfixed)
			return 1
		}
		return 0
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "rtwlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// sortFindings orders findings by file, line, column, analyzer,
// message — a total order, so the output is byte-stable.
func sortFindings(fs []finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// tokenFileSet returns the FileSet shared by the loaded packages (nil
// when no packages matched).
func tokenFileSet(pkgs []*analysis.Package) *token.FileSet {
	if len(pkgs) == 0 {
		return nil
	}
	return pkgs[0].Fset
}

// writeJSON emits the findings as an indented JSON array ([] when
// clean, never null).
func writeJSON(w io.Writer, findings []finding) error {
	if findings == nil {
		findings = []finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// applyFixes applies the first suggested fix of every finding, grouped
// by file, and rewrites the files in place. It returns the number of
// edits applied and files rewritten.
func applyFixes(fset *token.FileSet, findings []finding) (edits, files int, err error) {
	if fset == nil || len(findings) == 0 {
		return 0, 0, nil
	}
	diags := make([]analysis.Diagnostic, 0, len(findings))
	for _, f := range findings {
		if f.Fixable {
			diags = append(diags, f.diag)
		}
	}
	byFile := analysis.FixEdits(fset, diags)
	names := make([]string, 0, len(byFile))
	for name := range byFile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			return edits, files, err
		}
		out, err := analysis.ApplyEdits(fset, src, byFile[name])
		if err != nil {
			return edits, files, fmt.Errorf("fixing %s: %w", relPath(name), err)
		}
		info, err := os.Stat(name)
		if err != nil {
			return edits, files, err
		}
		if err := os.WriteFile(name, out, info.Mode().Perm()); err != nil {
			return edits, files, err
		}
		edits += len(byFile[name])
		files++
	}
	return edits, files, nil
}

// selectAnalyzers resolves a comma-separated -only list.
func selectAnalyzers(all []*analysis.Analyzer, names string) ([]*analysis.Analyzer, error) {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(byName))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// relPath shortens absolute file names to be relative to the working
// directory, keeping output stable across checkouts.
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}
