// Command rtwlint runs the repository's domain-specific analyzers (see
// internal/lint and docs/LINTING.md) over the packages matching the
// given patterns:
//
//	rtwlint [-list] [-only name,name] [packages...]
//
// With no patterns it checks ./.... It prints findings one per line as
//
//	path/file.go:line:col: message (analyzer)
//
// and exits 1 when any finding survives suppression, 2 on usage or
// load errors, 0 on a clean run. It complements `go vet` (run both; see
// `make lint`): vet covers the generic mistakes, rtwlint the invariants
// of the paper's analysis pipeline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtwlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: rtwlint [-list] [-only name,name] [packages...]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		selected, err := selectAnalyzers(analyzers, *only)
		if err != nil {
			fmt.Fprintln(stderr, "rtwlint:", err)
			return 2
		}
		analyzers = selected
	}

	pkgs, err := loader.Load("", fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "rtwlint:", err)
		return 2
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(stderr, "rtwlint:", err)
			return 2
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Fprintf(stdout, "%s:%d:%d: %s (%s)\n",
				relPath(pos.Filename), pos.Line, pos.Column, d.Message, d.Analyzer)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "rtwlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// selectAnalyzers resolves a comma-separated -only list.
func selectAnalyzers(all []*analysis.Analyzer, names string) ([]*analysis.Analyzer, error) {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(byName))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// relPath shortens absolute file names to be relative to the working
// directory, keeping output stable across checkouts.
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}
