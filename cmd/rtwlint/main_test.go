package main

import (
	"os"
	"strings"
	"testing"
)

// chdirRepoRoot runs the driver from the module root so ./... patterns
// resolve (tests execute in cmd/rtwlint).
func chdirRepoRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(wd + "/../..")
}

func TestListFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	for _, name := range []string{"unsyncshared", "floateq", "detrand", "errdrop", "directive"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-only", "nosuch", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown analyzer "nosuch"`) {
		t.Errorf("stderr %q should name the unknown analyzer", errb.String())
	}
}

// TestCleanPackage: the framework package itself must be clean under
// the full suite — and this exercises the loader end to end.
func TestCleanPackage(t *testing.T) {
	chdirRepoRoot(t)
	var out, errb strings.Builder
	if code := run([]string{"./internal/lint/analysis"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("unexpected findings:\n%s", out.String())
	}
}

// TestFindingsExitCode: a package seeded with violations must produce
// findings and exit 1. The fixture directory doubles as the seed; it is
// loaded here as a real package via a temporary module-relative
// pattern, so use the lint testdata through the loader's eyes.
func TestFindingsExitCode(t *testing.T) {
	chdirRepoRoot(t)
	dir := t.TempDir()
	src := `package seeded

func mean(a, b float64) bool { return a == b }
`
	if err := os.WriteFile(dir+"/seeded.go", []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mod := "module seeded\n\ngo 1.22\n"
	if err := os.WriteFile(dir+"/go.mod", []byte(mod), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Chdir(dir)
	var out, errb strings.Builder
	if code := run([]string{"-only", "floateq", "."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "floating-point == comparison") {
		t.Errorf("finding not printed:\n%s", out.String())
	}
}
