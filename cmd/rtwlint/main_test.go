package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdirRepoRoot runs the driver from the module root so ./... patterns
// resolve (tests execute in cmd/rtwlint).
func chdirRepoRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(wd + "/../..")
}

func TestListFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	for _, name := range []string{"unsyncshared", "floateq", "detrand", "errdrop", "directive"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-only", "nosuch", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown analyzer "nosuch"`) {
		t.Errorf("stderr %q should name the unknown analyzer", errb.String())
	}
}

// TestCleanPackage: the framework package itself must be clean under
// the full suite — and this exercises the loader end to end.
func TestCleanPackage(t *testing.T) {
	chdirRepoRoot(t)
	var out, errb strings.Builder
	if code := run([]string{"./internal/lint/analysis"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("unexpected findings:\n%s", out.String())
	}
}

// TestFindingsExitCode: a package seeded with violations must produce
// findings and exit 1. The fixture directory doubles as the seed; it is
// loaded here as a real package via a temporary module-relative
// pattern, so use the lint testdata through the loader's eyes.
func TestFindingsExitCode(t *testing.T) {
	chdirRepoRoot(t)
	dir := t.TempDir()
	src := `package seeded

func mean(a, b float64) bool { return a == b }
`
	if err := os.WriteFile(dir+"/seeded.go", []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mod := "module seeded\n\ngo 1.22\n"
	if err := os.WriteFile(dir+"/go.mod", []byte(mod), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Chdir(dir)
	var out, errb strings.Builder
	if code := run([]string{"-only", "floateq", "."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "floating-point == comparison") {
		t.Errorf("finding not printed:\n%s", out.String())
	}
}

// seedModule writes a throwaway module under a temp dir and chdirs into
// it. files maps relative path -> content.
func seedModule(t *testing.T, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module seeded\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
}

// TestSortAcrossPackages: findings are merged across packages and
// sorted by file path, not reported package-by-package. The nested
// package's file sorts before the root's, while package order (root
// first) would print it last — and repeated runs are byte-identical.
func TestSortAcrossPackages(t *testing.T) {
	chdirRepoRoot(t)
	seedModule(t, map[string]string{
		"root.go":       "package seeded\n\nfunc R(a, b float64) bool { return a == b }\n",
		"inner/file.go": "package inner\n\nfunc I(a, b float64) bool { return a == b }\n",
	})
	var out1, out2, errb strings.Builder
	if code := run([]string{"-only", "floateq", "./..."}, &out1, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, errb.String())
	}
	if code := run([]string{"-only", "floateq", "./..."}, &out2, &errb); code != 1 {
		t.Fatalf("second run exit %d, want 1", code)
	}
	if out1.String() != out2.String() {
		t.Errorf("output not byte-stable:\n--- first ---\n%s--- second ---\n%s", out1.String(), out2.String())
	}
	lines := strings.Split(strings.TrimSpace(out1.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 findings, got %d:\n%s", len(lines), out1.String())
	}
	if !strings.HasPrefix(lines[0], "inner/file.go:") || !strings.HasPrefix(lines[1], "root.go:") {
		t.Errorf("findings not sorted by file across packages:\n%s", out1.String())
	}
}

// TestJSONOutput: -json emits a parseable array carrying position,
// analyzer, and message.
func TestJSONOutput(t *testing.T) {
	chdirRepoRoot(t)
	seedModule(t, map[string]string{
		"seeded.go": "package seeded\n\nfunc R(a, b float64) bool { return a == b }\n",
	})
	var out, errb strings.Builder
	if code := run([]string{"-only", "floateq", "-json", "."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, errb.String())
	}
	var got []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out.String()), &got); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(got) != 1 {
		t.Fatalf("want 1 finding, got %d", len(got))
	}
	f := got[0]
	if f.File != "seeded.go" || f.Line != 3 || f.Column == 0 || f.Analyzer != "floateq" ||
		!strings.Contains(f.Message, "floating-point == comparison") {
		t.Errorf("unexpected finding: %+v", f)
	}
}

// TestSARIFOutput: -sarif output parses as SARIF 2.1.0 — version
// pinned, schema URI present, driver named, one result per finding
// with a physical location, and the rule table covering the analyzers
// that ran. A clean run still emits a valid log with zero results.
func TestSARIFOutput(t *testing.T) {
	chdirRepoRoot(t)
	seedModule(t, map[string]string{
		"seeded.go": "package seeded\n\nfunc R(a, b float64) bool { return a == b }\n",
	})
	var out, errb strings.Builder
	if code := run([]string{"-only", "floateq", "-sarif", "."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, errb.String())
	}
	var log struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("-sarif output does not parse: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("not a SARIF 2.1.0 log: version %q schema %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want 1 run, got %d", len(log.Runs))
	}
	run0 := log.Runs[0]
	if run0.Tool.Driver.Name != "rtwlint" {
		t.Errorf("driver name %q, want rtwlint", run0.Tool.Driver.Name)
	}
	if len(run0.Tool.Driver.Rules) != 1 || run0.Tool.Driver.Rules[0].ID != "floateq" ||
		run0.Tool.Driver.Rules[0].ShortDescription.Text == "" {
		t.Errorf("rule table wrong: %+v", run0.Tool.Driver.Rules)
	}
	if len(run0.Results) != 1 {
		t.Fatalf("want 1 result, got %d", len(run0.Results))
	}
	r := run0.Results[0]
	loc := r.Locations[0].PhysicalLocation
	if r.RuleID != "floateq" || r.Level != "error" || r.Message.Text == "" ||
		loc.ArtifactLocation.URI != "seeded.go" || loc.Region.StartLine != 3 || loc.Region.StartColumn == 0 {
		t.Errorf("unexpected result: %+v", r)
	}

	// A clean package still yields a valid, empty-results log.
	seedModule(t, map[string]string{"clean.go": "package seeded\n\nfunc OK() {}\n"})
	out.Reset()
	if code := run([]string{"-sarif", "."}, &out, &errb); code != 0 {
		t.Fatalf("clean run exit %d\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), `"results": []`) {
		t.Errorf("clean SARIF log should carry an empty results array:\n%s", out.String())
	}
}

// TestJSONDeterminism: two full-suite runs over a multi-package module
// — including an interprocedural unlockpath finding whose summaries
// are computed by parallel per-package passes — must produce
// byte-identical JSON. This pins the merge-in-package-order contract
// of the parallel driver and the determinism of the summary engine.
func TestJSONDeterminism(t *testing.T) {
	chdirRepoRoot(t)
	seedModule(t, map[string]string{
		"locks/locks.go": `package locks

import "sync"

type Store struct {
	Mu sync.Mutex
	M  map[string]int
}

func (s *Store) Get(k string) (int, bool) {
	s.Mu.Lock()
	v, ok := s.M[k]
	if !ok {
		return 0, false
	}
	s.Mu.Unlock()
	return v, ok
}
`,
		"calc/calc.go": "package calc\n\nfunc Eq(a, b float64) bool { return a == b }\n",
	})
	var out1, out2, errb strings.Builder
	if code := run([]string{"-json", "./..."}, &out1, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, errb.String())
	}
	if code := run([]string{"-json", "./..."}, &out2, &errb); code != 1 {
		t.Fatalf("second run exit %d, want 1", code)
	}
	if out1.String() != out2.String() {
		t.Errorf("JSON output not byte-identical across runs:\n--- first ---\n%s--- second ---\n%s",
			out1.String(), out2.String())
	}
	var got []struct {
		File     string `json:"file"`
		Analyzer string `json:"analyzer"`
	}
	if err := json.Unmarshal([]byte(out1.String()), &got); err != nil {
		t.Fatalf("output does not parse: %v\n%s", err, out1.String())
	}
	byAnalyzer := map[string]int{}
	for _, f := range got {
		byAnalyzer[f.Analyzer]++
	}
	if byAnalyzer["unlockpath"] == 0 || byAnalyzer["floateq"] == 0 {
		t.Errorf("want findings from both tiers (unlockpath, floateq), got %v", byAnalyzer)
	}
}

// TestSARIFCrashExitCode: a package that fails to load must exit 2 —
// distinct from exit 1 (findings) — so callers like `make lint-sarif`
// can tell a crash from a log with results. The error goes to stderr,
// never into the SARIF stream.
func TestSARIFCrashExitCode(t *testing.T) {
	chdirRepoRoot(t)
	seedModule(t, map[string]string{
		"broken.go": "package seeded\n\nfunc oops() { return undefinedIdent }\n",
	})
	var out, errb strings.Builder
	if code := run([]string{"-sarif", "."}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 for a load failure\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("crash must not write partial SARIF to stdout:\n%s", out.String())
	}
	if errb.String() == "" {
		t.Error("load failure should be reported on stderr")
	}
}

// TestMakefileSARIFPropagatesFailure pins the lint-sarif recipe: the
// artifact is written unconditionally, but the exit status must be
// propagated rather than masked with `|| true` — a crash (exit 2) has
// to fail the target instead of uploading an empty or stale log.
func TestMakefileSARIFPropagatesFailure(t *testing.T) {
	chdirRepoRoot(t)
	data, err := os.ReadFile("Makefile")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	recipe := ""
	for i, line := range lines {
		if strings.HasPrefix(line, "lint-sarif:") {
			for _, l := range lines[i+1:] {
				if !strings.HasPrefix(l, "\t") {
					break
				}
				recipe += l + "\n"
			}
		}
	}
	if recipe == "" {
		t.Fatal("lint-sarif target not found in Makefile")
	}
	if strings.Contains(recipe, "|| true") {
		t.Errorf("lint-sarif masks rtwlint's exit status with `|| true`:\n%s", recipe)
	}
	if !strings.Contains(recipe, "exit $$status") {
		t.Errorf("lint-sarif should capture and propagate the exit status:\n%s", recipe)
	}
}

// TestFixRewritesFiles: -fix applies the stale-directive delete fix in
// place, after which the package is clean.
func TestFixRewritesFiles(t *testing.T) {
	chdirRepoRoot(t)
	src := `package seeded

func stale(a, b int) bool {
	//rtwlint:ignore floateq integers cannot trip floateq
	return a == b
}
`
	seedModule(t, map[string]string{"seeded.go": src})
	var out, errb strings.Builder
	if code := run([]string{"-only", "directive,floateq", "-fix", "."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 (every finding fixable)\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "stale rtwlint directive") {
		t.Errorf("stale finding not printed:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "applied 1 fix(es) across 1 file(s)") {
		t.Errorf("fix summary missing:\n%s", errb.String())
	}
	fixed, err := os.ReadFile("seeded.go")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(fixed), "rtwlint:ignore") {
		t.Errorf("stale directive not deleted:\n%s", fixed)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-only", "directive,floateq", "."}, &out, &errb); code != 0 {
		t.Errorf("package not clean after -fix: exit %d\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
}

// TestFixIdempotent: applying -fix twice is a fixed point — the second
// run finds nothing fixable, applies zero edits, and leaves every file
// byte-identical to the first run's output. A fix whose replacement
// re-triggers its own (or another) analyzer would oscillate here.
func TestFixIdempotent(t *testing.T) {
	chdirRepoRoot(t)
	seedModule(t, map[string]string{
		"a.go": `package seeded

func staleA(a, b int) bool {
	//rtwlint:ignore floateq integers cannot trip floateq
	return a == b
}
`,
		"b.go": `package seeded

func staleB(x int) int {
	//rtwlint:ignore intoverflow -- obsolete: the multiply below was removed
	return x
}
`,
	})
	var out, errb strings.Builder
	if code := run([]string{"-only", "directive,floateq,intoverflow", "-fix", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("first -fix: exit %d, want 0\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "applied 2 fix(es) across 2 file(s)") {
		t.Fatalf("first -fix should apply both stale-directive deletes:\n%s", errb.String())
	}
	after1 := map[string][]byte{}
	for _, name := range []string{"a.go", "b.go"} {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		after1[name] = data
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-only", "directive,floateq,intoverflow", "-fix", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("second -fix: exit %d, want 0 (clean)\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	if strings.Contains(errb.String(), "applied") {
		t.Errorf("second -fix applied edits on an already-fixed tree:\n%s", errb.String())
	}
	for name, want := range after1 {
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s changed on the second -fix pass:\n--- after first\n%s\n--- after second\n%s",
				name, want, got)
		}
	}
}
