package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"repro/internal/lint/analysis"
)

// SARIF 2.1.0 output, the static-analysis interchange format GitHub
// code scanning ingests. Only the required subset of the schema is
// emitted: one run, the driver's rule table (every analyzer that ran,
// so a clean log still documents the coverage), and one result per
// finding with a single physical location. Fields stay in schema
// casing; `$schema` pins the version for validators.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

const sarifSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"

// writeSARIF emits the findings as one SARIF run. Findings arrive
// pre-sorted (file/line/column/analyzer/message), so the log is
// byte-stable; URIs are working-directory-relative with forward
// slashes, as the artifactLocation contract requires.
func writeSARIF(w io.Writer, analyzers []*analysis.Analyzer, findings []finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  sarifSchemaURI,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rtwlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
