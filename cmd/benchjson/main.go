// Command benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark results can be committed,
// diffed and consumed by scripts without re-parsing the bench text
// format everywhere.
//
//	go test -run '^$' -bench 'Table|CalU' -benchmem . | go run ./cmd/benchjson -o BENCH_core.json
//
// The parser understands the standard benchmark line —
//
//	BenchmarkTable1-8    1    118800000 ns/op    1234 B/op    89256 allocs/op
//
// — including any custom metrics reported with b.ReportMetric (the
// table benchmarks attach top-ratio and bottom-ratio). Context lines
// (goos/goarch/pkg/cpu) are carried into the enclosing document and,
// for pkg, onto each benchmark. Non-benchmark lines (PASS, ok, logs)
// are ignored. Exit status is 1 if no benchmark line was found, so a
// silently empty run fails loudly in CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in.
	Pkg string `json:"pkg,omitempty"`
	// Procs is the GOMAXPROCS suffix (0 if none was printed).
	Procs int `json:"procs,omitempty"`
	// Iterations is b.N for the measured run.
	Iterations int `json:"iterations"`
	// Metrics maps unit → value: ns/op, B/op, allocs/op, plus any
	// custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the emitted JSON root.
type Document struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Document, error) {
	doc := &Document{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines in input")
	}
	return doc, nil
}

// parseBenchLine parses one "BenchmarkX-P  N  v unit  v unit ..."
// line. It returns ok=false for lines that merely start with the word
// Benchmark (such as a benchmark's own log output).
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Name, iterations, and at least one value-unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Metrics: map[string]float64{}}
	if i := strings.LastIndexByte(b.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = n
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
