package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Example CPU @ 3.00GHz
BenchmarkTable1-8   	       1	118800000 ns/op	 123456 B/op	   89256 allocs/op	  0.9123 top-ratio	  0.4456 bottom-ratio
BenchmarkTable1-8: logs that start with the benchmark name must not parse
BenchmarkCalU-8   	   76214	     15009 ns/op	    2048 B/op	      26 allocs/op
pkg: repro/internal/core
BenchmarkOther   	     100	    500000 ns/op
PASS
ok  	repro	21.1s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.CPU != "Example CPU @ 3.00GHz" {
		t.Fatalf("context = %q/%q/%q", doc.GOOS, doc.GOARCH, doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkTable1" || b.Procs != 8 || b.Iterations != 1 || b.Pkg != "repro" {
		t.Fatalf("benchmark[0] = %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 118800000, "B/op": 123456, "allocs/op": 89256,
		"top-ratio": 0.9123, "bottom-ratio": 0.4456,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("metrics[%q] = %v, want %v", unit, got, want)
		}
	}
	// A benchmark without -P suffix and under a later pkg header.
	b = doc.Benchmarks[2]
	if b.Name != "BenchmarkOther" || b.Procs != 0 || b.Pkg != "repro/internal/core" {
		t.Fatalf("benchmark[2] = %+v", b)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok \trepro\t0.1s\n")); err == nil {
		t.Fatal("empty bench output should be an error")
	}
}
